package router

import (
	"fmt"

	"gonoc/internal/arbiter"
	"gonoc/internal/topology"
)

// RCUnit is the routing-computation logic of one input port. In the
// baseline router it is a single pair of coordinate comparators; the
// protected router adds a spatially redundant duplicate that is switched
// in when the primary is detected faulty (Section V-A).
type RCUnit struct {
	topo      topology.Topology
	redundant bool // protected router: duplicate unit present
	faulty    [2]bool
}

// NewRCUnit returns an RC unit for a router at a node of topo. redundant
// selects the protected router's duplicate copy.
func NewRCUnit(topo topology.Topology, redundant bool) *RCUnit {
	return &RCUnit{topo: topo, redundant: redundant}
}

// SetFaulty marks one copy faulty: copy 0 is the primary, copy 1 the
// duplicate. Marking the duplicate of a non-redundant unit panics.
func (u *RCUnit) SetFaulty(copyIdx int, f bool) {
	if copyIdx == 1 && !u.redundant {
		panic("router: baseline RC unit has no duplicate copy")
	}
	u.faulty[copyIdx] = f
}

// Faulty reports whether copy copyIdx is faulty.
func (u *RCUnit) Faulty(copyIdx int) bool { return u.faulty[copyIdx] }

// Usable reports whether the port can still perform routing computation.
func (u *RCUnit) Usable() bool {
	if !u.faulty[0] {
		return true
	}
	return u.redundant && !u.faulty[1]
}

// Compute runs the topology's deterministic minimal routing for a packet
// at node cur headed to dst. ok is false when no fault-free copy remains.
func (u *RCUnit) Compute(cur, dst int) (topology.Port, bool) {
	if !u.Usable() {
		return topology.Local, false
	}
	//nocvet:ignore hotpathalloc topology Route implementations are pure coordinate arithmetic
	return u.topo.Route(cur, dst), true
}

// VAlloc holds the two-stage separable virtual-channel allocator's
// arbiters (Figure 3a) and their fault state.
//
// Stage 1: every input VC owns a set of po v:1 arbiters (one per output
// port). Behaviourally only the arbiter for the VC's routed output port is
// exercised in a given allocation, and the paper treats a fault in any
// arbiter of a VC's set as making the whole set unusable, so we model one
// v:1 arbiter plus one fault flag per input VC.
//
// Stage 2: one (pi·v):1 arbiter per downstream VC of each output port.
type VAlloc struct {
	cfg Config
	// stage1 is indexed [inPort][inVC]; each arbitrates over the v
	// downstream VCs of the routed output port.
	stage1 [][]*arbiter.RoundRobin
	// stage1Faulty marks an input VC's whole arbiter set faulty.
	stage1Faulty [][]bool
	// stage2 is indexed [outPort][downVC]; each arbitrates over the pi·v
	// input VCs.
	stage2 [][]*arbiter.RoundRobin
}

// NewVAlloc builds the allocator arbiters for cfg.
func NewVAlloc(cfg Config) *VAlloc {
	va := &VAlloc{cfg: cfg}
	va.stage1 = make([][]*arbiter.RoundRobin, cfg.Ports)
	va.stage1Faulty = make([][]bool, cfg.Ports)
	va.stage2 = make([][]*arbiter.RoundRobin, cfg.Ports)
	for p := 0; p < cfg.Ports; p++ {
		va.stage1[p] = make([]*arbiter.RoundRobin, cfg.VCs)
		va.stage1Faulty[p] = make([]bool, cfg.VCs)
		va.stage2[p] = make([]*arbiter.RoundRobin, cfg.VCs)
		for v := 0; v < cfg.VCs; v++ {
			va.stage1[p][v] = arbiter.NewRoundRobin(cfg.VCs)
			va.stage2[p][v] = arbiter.NewRoundRobin(cfg.Ports * cfg.VCs)
		}
	}
	return va
}

// Stage1 returns input VC (p, v)'s first-stage arbiter.
func (va *VAlloc) Stage1(p, v int) *arbiter.RoundRobin { return va.stage1[p][v] }

// SetStage1Faulty marks input VC (p, v)'s arbiter set faulty.
func (va *VAlloc) SetStage1Faulty(p, v int, f bool) { va.stage1Faulty[p][v] = f }

// Stage1Faulty reports whether input VC (p, v)'s arbiter set is faulty.
func (va *VAlloc) Stage1Faulty(p, v int) bool { return va.stage1Faulty[p][v] }

// Stage2 returns the second-stage arbiter of downstream VC (outPort, dvc).
func (va *VAlloc) Stage2(outPort, dvc int) *arbiter.RoundRobin { return va.stage2[outPort][dvc] }

// PortStage1Dead reports whether every VC arbiter set of input port p is
// faulty — the VA-stage failure condition of Section VIII-B.
func (va *VAlloc) PortStage1Dead(p int) bool {
	for v := 0; v < va.cfg.VCs; v++ {
		if !va.stage1Faulty[p][v] {
			return false
		}
	}
	return true
}

// ClassStage2Dead reports whether, for output port p and message class
// cls, every downstream VC's stage-2 arbiter is faulty, making allocation
// for that class impossible.
func (va *VAlloc) ClassStage2Dead(p, cls int) bool {
	lo, hi := va.cfg.ClassRange(cls)
	for dvc := lo; dvc < hi; dvc++ {
		if !va.stage2[p][dvc].Faulty() {
			return false
		}
	}
	return true
}

// SAlloc holds the two-stage separable switch allocator (Figure 3b):
// stage 1 is one v:1 arbiter per input port (wrapped with the protected
// router's bypass path), stage 2 one pi:1 arbiter per output port.
type SAlloc struct {
	cfg    Config
	stage1 []*arbiter.Bypassed
	stage2 []*arbiter.RoundRobin
}

// NewSAlloc builds the switch allocator arbiters for cfg.
func NewSAlloc(cfg Config) *SAlloc {
	sa := &SAlloc{cfg: cfg}
	sa.stage1 = make([]*arbiter.Bypassed, cfg.Ports)
	sa.stage2 = make([]*arbiter.RoundRobin, cfg.Ports)
	for p := 0; p < cfg.Ports; p++ {
		sa.stage1[p] = arbiter.NewBypassed(cfg.VCs, cfg.BypassRotatePeriod)
		sa.stage2[p] = arbiter.NewRoundRobin(cfg.Ports)
	}
	return sa
}

// Stage1 returns input port p's first-stage arbiter (with bypass).
func (sa *SAlloc) Stage1(p int) *arbiter.Bypassed { return sa.stage1[p] }

// Stage2 returns output port p's second-stage arbiter.
func (sa *SAlloc) Stage2(p int) *arbiter.RoundRobin { return sa.stage2[p] }

// String implements fmt.Stringer.
func (va *VAlloc) String() string {
	return fmt.Sprintf("VAlloc{p=%d v=%d}", va.cfg.Ports, va.cfg.VCs)
}
