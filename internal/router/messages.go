package router

import (
	"fmt"

	"gonoc/internal/flit"
	"gonoc/internal/topology"
)

// OutFlit is a flit leaving a router through an output port, tagged with
// the downstream VC it was allocated. The network delivers it to the
// neighbouring router's opposite input port (or to the local network
// interface when Out == Local).
type OutFlit struct {
	// Out is the output port the flit leaves through.
	Out topology.Port
	// DownVC is the downstream input VC the flit enters.
	DownVC int
	// F is the flit itself.
	F *flit.Flit
}

// String implements fmt.Stringer.
func (o OutFlit) String() string {
	return fmt.Sprintf("out=%v dvc=%d %v", o.Out, o.DownVC, o.F)
}

// Credit is a flow-control credit returned upstream when a flit leaves an
// input VC buffer. VCFree additionally signals that the tail departed and
// the VC may be reallocated (gonoc's atomic VC reallocation).
type Credit struct {
	// In is the input port of the router that emitted the credit; the
	// network forwards the credit to whatever feeds that port (the
	// neighbouring router's output side, or the local NI).
	In topology.Port
	// VC is the input VC index the credit refers to, as seen by the
	// upstream allocator (a transferred packet credits its original VC).
	VC int
	// VCFree is set when the tail flit departed and the VC is free for a
	// new packet.
	VCFree bool
}

// String implements fmt.Stringer.
func (c Credit) String() string {
	return fmt.Sprintf("credit in=%v vc=%d free=%v", c.In, c.VC, c.VCFree)
}

// InFlit is a flit arriving at a router input port, tagged with the VC it
// was allocated upstream.
type InFlit struct {
	// In is the input port the flit arrives on.
	In topology.Port
	// VC is the input VC the upstream allocated.
	VC int
	// F is the flit itself.
	F *flit.Flit
}

// String implements fmt.Stringer.
func (i InFlit) String() string {
	return fmt.Sprintf("in=%v vc=%d %v", i.In, i.VC, i.F)
}
