// Package router provides the structural building blocks of the NoC
// router microarchitecture: configuration, the routing-computation units,
// the allocator arbiter arrays with their fault flags, and the message
// types exchanged between a router and its links.
//
// The behavioural pipeline — how these blocks are exercised each cycle,
// including the paper's fault-tolerance mechanisms — lives in
// internal/core.
package router

import (
	"fmt"

	"gonoc/internal/obs"
)

// Config describes a router instance. The paper's evaluation point is the
// default: a 5-port router with 4 VCs of depth 4 per input port.
type Config struct {
	// Ports is the router radix (5 for a 2-D mesh: L, N, E, S, W).
	Ports int
	// VCs is the number of virtual channels per input port.
	VCs int
	// Depth is the per-VC buffer depth in flits.
	Depth int
	// Classes is the number of message classes (virtual networks). VCs
	// are partitioned evenly across classes so that requests and
	// responses never share a VC, which breaks protocol deadlock.
	// Classes must divide VCs.
	Classes int
	// FaultTolerant selects the paper's protected router; false selects
	// the unprotected baseline.
	FaultTolerant bool
	// BypassRotatePeriod is how many bypass grants the SA stage-1 default
	// winner serves before rotating (Section V-C1's anti-starvation
	// rotation). Values < 1 default to 16.
	BypassRotatePeriod int
	// Obs enables the observability layer (internal/obs): routers bind
	// per-component counter handles and emit trace events to it. Leave
	// nil — the default — for a metrics-free simulation; the
	// instrumented paths then cost a single pointer test per site.
	Obs *obs.Observer
}

// DefaultConfig returns the paper's 5×5, 4-VC, depth-4 configuration.
func DefaultConfig() Config {
	return Config{Ports: 5, VCs: 4, Depth: 4, Classes: 2, BypassRotatePeriod: 16}
}

// Validate checks the configuration and fills defaults. It returns an
// error describing the first problem found.
func (c *Config) Validate() error {
	if c.Ports < 3 {
		return fmt.Errorf("router: need at least 3 ports, got %d", c.Ports)
	}
	if c.VCs < 1 {
		return fmt.Errorf("router: need at least 1 VC, got %d", c.VCs)
	}
	if c.Depth < 1 {
		return fmt.Errorf("router: need buffer depth >= 1, got %d", c.Depth)
	}
	if c.Classes < 1 {
		c.Classes = 1
	}
	if c.VCs%c.Classes != 0 {
		return fmt.Errorf("router: %d classes must divide %d VCs", c.Classes, c.VCs)
	}
	if c.BypassRotatePeriod < 1 {
		c.BypassRotatePeriod = 16
	}
	return nil
}

// ClassRange returns the half-open VC index range [lo, hi) reserved for
// message class cls.
func (c Config) ClassRange(cls int) (lo, hi int) {
	per := c.VCs / c.Classes
	return cls * per, (cls + 1) * per
}

// ClassOf returns the message class that VC index v belongs to.
func (c Config) ClassOf(v int) int {
	per := c.VCs / c.Classes
	return v / per
}
