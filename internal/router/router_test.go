package router

import (
	"testing"

	"gonoc/internal/topology"
)

func TestDefaultConfigValid(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if cfg.Ports != 5 || cfg.VCs != 4 || cfg.Depth != 4 {
		t.Fatalf("default config is not the paper's design point: %+v", cfg)
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		ok   bool
	}{
		{"too few ports", func(c *Config) { c.Ports = 2 }, false},
		{"no VCs", func(c *Config) { c.VCs = 0 }, false},
		{"no depth", func(c *Config) { c.Depth = 0 }, false},
		{"classes must divide VCs", func(c *Config) { c.VCs = 3; c.Classes = 2 }, false},
		{"single class ok", func(c *Config) { c.Classes = 1 }, true},
		{"four classes over four VCs", func(c *Config) { c.Classes = 4 }, true},
	}
	for _, tc := range cases {
		cfg := DefaultConfig()
		tc.mut(&cfg)
		err := cfg.Validate()
		if (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestValidateFillsDefaults(t *testing.T) {
	cfg := Config{Ports: 5, VCs: 4, Depth: 4}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Classes != 1 {
		t.Errorf("Classes defaulted to %d, want 1", cfg.Classes)
	}
	if cfg.BypassRotatePeriod != 16 {
		t.Errorf("BypassRotatePeriod defaulted to %d, want 16", cfg.BypassRotatePeriod)
	}
}

func TestClassRangeAndClassOf(t *testing.T) {
	cfg := DefaultConfig() // 4 VCs, 2 classes
	lo, hi := cfg.ClassRange(0)
	if lo != 0 || hi != 2 {
		t.Errorf("class 0 range [%d, %d)", lo, hi)
	}
	lo, hi = cfg.ClassRange(1)
	if lo != 2 || hi != 4 {
		t.Errorf("class 1 range [%d, %d)", lo, hi)
	}
	for v := 0; v < cfg.VCs; v++ {
		want := 0
		if v >= 2 {
			want = 1
		}
		if got := cfg.ClassOf(v); got != want {
			t.Errorf("ClassOf(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestClassRangePartitionProperty(t *testing.T) {
	// Every VC belongs to exactly one class and ClassOf agrees with
	// ClassRange, for all valid (VCs, Classes) combinations.
	for vcs := 1; vcs <= 8; vcs++ {
		for classes := 1; classes <= vcs; classes++ {
			if vcs%classes != 0 {
				continue
			}
			cfg := Config{Ports: 5, VCs: vcs, Depth: 2, Classes: classes}
			if err := cfg.Validate(); err != nil {
				t.Fatalf("vcs=%d classes=%d: %v", vcs, classes, err)
			}
			covered := make([]int, vcs)
			for cls := 0; cls < classes; cls++ {
				lo, hi := cfg.ClassRange(cls)
				for v := lo; v < hi; v++ {
					covered[v]++
					if cfg.ClassOf(v) != cls {
						t.Fatalf("vcs=%d classes=%d: ClassOf(%d)=%d want %d",
							vcs, classes, v, cfg.ClassOf(v), cls)
					}
				}
			}
			for v, c := range covered {
				if c != 1 {
					t.Fatalf("vcs=%d classes=%d: VC %d covered %d times", vcs, classes, v, c)
				}
			}
		}
	}
}

func TestRCUnitRedundancy(t *testing.T) {
	mesh := topology.NewMesh(3, 3)
	u := NewRCUnit(mesh, true)
	if !u.Usable() {
		t.Fatal("fresh unit unusable")
	}
	port, ok := u.Compute(4, 5)
	if !ok || port != topology.East {
		t.Fatalf("Compute = (%v, %v)", port, ok)
	}
	u.SetFaulty(0, true)
	if !u.Usable() || u.Faulty(1) {
		t.Fatal("duplicate should cover primary fault")
	}
	if port, ok = u.Compute(4, 5); !ok || port != topology.East {
		t.Fatalf("duplicate Compute = (%v, %v)", port, ok)
	}
	u.SetFaulty(1, true)
	if u.Usable() {
		t.Fatal("usable with both copies faulty")
	}
	if _, ok = u.Compute(4, 5); ok {
		t.Fatal("Compute succeeded with both copies faulty")
	}
	// Repair the primary: usable again.
	u.SetFaulty(0, false)
	if !u.Usable() {
		t.Fatal("not usable after repair")
	}
}

func TestRCUnitBaselineNoDuplicate(t *testing.T) {
	mesh := topology.NewMesh(3, 3)
	u := NewRCUnit(mesh, false)
	u.SetFaulty(0, true)
	if u.Usable() {
		t.Fatal("baseline unit usable after its only copy failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("marking nonexistent duplicate did not panic")
		}
	}()
	u.SetFaulty(1, true)
}

func TestVAllocStructure(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	va := NewVAlloc(cfg)
	// Stage 1 arbiters arbitrate over the v downstream VCs.
	if got := va.Stage1(0, 0).Inputs(); got != cfg.VCs {
		t.Errorf("stage-1 width %d, want %d", got, cfg.VCs)
	}
	// Stage 2 arbiters arbitrate over all pi·v input VCs.
	if got := va.Stage2(0, 0).Inputs(); got != cfg.Ports*cfg.VCs {
		t.Errorf("stage-2 width %d, want %d", got, cfg.Ports*cfg.VCs)
	}
	if va.String() == "" {
		t.Error("empty String")
	}
}

func TestVAllocPortStage1Dead(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Validate()
	va := NewVAlloc(cfg)
	for v := 0; v < cfg.VCs-1; v++ {
		va.SetStage1Faulty(2, v, true)
	}
	if va.PortStage1Dead(2) {
		t.Fatal("port dead with one arbiter set left")
	}
	va.SetStage1Faulty(2, cfg.VCs-1, true)
	if !va.PortStage1Dead(2) {
		t.Fatal("port not dead with all sets faulty")
	}
	if va.PortStage1Dead(1) {
		t.Fatal("wrong port reported dead")
	}
}

func TestVAllocClassStage2Dead(t *testing.T) {
	cfg := DefaultConfig() // 2 classes over 4 VCs
	cfg.Validate()
	va := NewVAlloc(cfg)
	va.Stage2(1, 0).SetFaulty(true)
	if va.ClassStage2Dead(1, 0) {
		t.Fatal("class dead with one of two arbiters faulty")
	}
	va.Stage2(1, 1).SetFaulty(true)
	if !va.ClassStage2Dead(1, 0) {
		t.Fatal("class 0 not dead with both its arbiters faulty")
	}
	if va.ClassStage2Dead(1, 1) {
		t.Fatal("class 1 wrongly dead")
	}
}

func TestSAllocStructure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Validate()
	sa := NewSAlloc(cfg)
	if got := sa.Stage1(0).Arb.Inputs(); got != cfg.VCs {
		t.Errorf("stage-1 width %d, want %d", got, cfg.VCs)
	}
	if got := sa.Stage2(0).Inputs(); got != cfg.Ports {
		t.Errorf("stage-2 width %d, want %d", got, cfg.Ports)
	}
}

func TestMessageStrings(t *testing.T) {
	of := OutFlit{Out: topology.East, DownVC: 2}
	c := Credit{In: topology.West, VC: 1, VCFree: true}
	inf := InFlit{In: topology.North, VC: 3}
	if of.String() == "" || c.String() == "" || inf.String() == "" {
		t.Fatal("empty message strings")
	}
}
