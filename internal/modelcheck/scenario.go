// Package modelcheck is the third correctness tier of gonoc, next to
// the nocvet static analyzers and the nocassert runtime assertions: a
// bounded exhaustive state-space explorer that drives the real
// noc.Network step function through every reachable interleaving of
// packet injections and cycle ticks on small configurations, and proves
//
//   - deadlock freedom: no reachable quiescent state retains
//     undelivered traffic with no enabled transition, and
//   - delivery: every injected packet whose destination is reachable
//     arrives at its sink in every reachable execution,
//
// both fault free and under every single link or router fault. The
// exploration is exact, not sampled: states are deduplicated by the
// canonical encoding from noc.AppendCanonical (cycle-number free, so
// behaviourally identical states merge across time), and transitions
// are generated from snapshots (noc.Snapshot / Restore), so the model
// IS the simulator — there is no separate abstract model to drift out
// of sync.
//
// For configurations too large to exhaust, the package degrades
// gracefully: Explore returns an Exhausted verdict with the explored
// bound, and MonteCarlo samples random walks with a Chernoff-style
// confidence bound instead. Crossval closes the loop on the
// reliability side, recomputing the faults-to-failure expectation
// exactly from the router's failure predicate and asserting the
// Monte-Carlo campaign of internal/fault agrees.
package modelcheck

import (
	"fmt"

	"gonoc/internal/flit"
	"gonoc/internal/noc"
	"gonoc/internal/obs"
	"gonoc/internal/router"
	"gonoc/internal/sim"
	"gonoc/internal/topology"
)

// Packet is one unit of scheduled traffic: the explorer decides when
// (and in which interleaving) each packet is offered, the scenario
// decides what the packet is.
type Packet struct {
	// Src and Dst are terminal node IDs.
	Src, Dst int
	// Size is the packet length in flits (>= 1).
	Size int
	// Class is the message class.
	Class flit.Class
}

// LinkFault names one bidirectional network link by (node, port), in
// the same convention as noc.SetLinkFault. On a torus this includes the
// wrap links (e.g. East on the last column).
type LinkFault struct {
	Node int
	Port topology.Port
}

// Scenario is a fully specified small configuration: the network shape,
// the static fault set, and the traffic whose interleavings the
// explorer enumerates. Scenarios are plain values so sweeps can derive
// variants by copying.
type Scenario struct {
	// Name labels the scenario in results and sweep output.
	Name string
	// Width and Height are the router-grid dimensions.
	Width, Height int
	// Topo selects the topology family, as noc.Config.Topo: "" or
	// "mesh" (the default), "torus" or "cmesh".
	Topo string
	// FaultTolerant selects the protected router (true) or baseline.
	FaultTolerant bool
	// VCs, Classes and Depth configure every router; zero values take
	// the small-model defaults (2 VCs, 1 class, depth 2) rather than
	// the paper's full-size router, to keep state spaces tractable.
	VCs, Classes, Depth int
	// Retx configures NI retransmission; the zero value disables it.
	Retx noc.RetxConfig
	// LinkFaults and RouterFaults are applied before exploration
	// starts; fault-aware routing reroutes around them.
	LinkFaults   []LinkFault
	RouterFaults []int
	// Packets is the traffic to deliver. Injection order per source
	// follows slice order; interleaving across sources and with ticks
	// is the explorer's choice.
	Packets []Packet
	// SabotageNode, when >= 0, arms a credit-loss sabotage transition
	// at that node: the explorer may discard one pending upstream
	// credit there (noc.DropPendingCredit), modelling a flow-control
	// corruption the design does NOT tolerate. Used to validate that
	// the checker finds and reports real deadlocks; -1 disables.
	SabotageNode int
}

// Ring returns the standard small-model scenario on a w x h mesh: every
// node sends one single-flit packet to its successor in node order, the
// densest all-nodes-active pattern with a small packet count.
func Ring(w, h int) Scenario {
	return RingOn("", w, h)
}

// RingOn is Ring on an explicit topology family ("" or "mesh", "torus",
// "cmesh"), for sweeping the same traffic pattern across families.
func RingOn(topo string, w, h int) Scenario {
	n := w * h
	sc := Scenario{
		Name:          fmt.Sprintf("ring-%dx%d", w, h),
		Width:         w,
		Height:        h,
		FaultTolerant: true,
		SabotageNode:  -1,
	}
	if topo != "" && topo != "mesh" {
		sc.Topo = topo
		sc.Name = fmt.Sprintf("ring-%dx%d-%s", w, h, topo)
	}
	for i := 0; i < n; i++ {
		sc.Packets = append(sc.Packets, Packet{Src: i, Dst: (i + 1) % n, Size: 1})
	}
	return sc
}

// topology resolves the scenario's router-graph topology.
func (sc *Scenario) topology() (topology.Topology, error) {
	return topology.New(sc.Topo, sc.Width, sc.Height, 1)
}

// SingleFaultSweep derives from base the full single-fault family: the
// fault-free scenario, one scenario per dead network link (on a torus
// this includes every wrap link), and one per dead router. Exploring
// every member proves the delivery claim for every single network-level
// fault site. A base whose topology does not resolve is returned alone;
// exploring it surfaces the configuration error.
func SingleFaultSweep(base Scenario) []Scenario {
	out := []Scenario{base}
	m, err := base.topology()
	if err != nil {
		return out
	}
	for id := 0; id < m.Nodes(); id++ {
		for _, p := range []topology.Port{topology.East, topology.South} {
			if _, ok := m.Neighbor(id, p); !ok {
				continue
			}
			sc := base
			sc.Name = fmt.Sprintf("%s/link-%d-%v", base.Name, id, p)
			sc.LinkFaults = append([]LinkFault{}, base.LinkFaults...)
			sc.LinkFaults = append(sc.LinkFaults, LinkFault{Node: id, Port: p})
			out = append(out, sc)
		}
	}
	for id := 0; id < m.Nodes(); id++ {
		sc := base
		sc.Name = fmt.Sprintf("%s/router-%d", base.Name, id)
		sc.RouterFaults = append([]int{}, base.RouterFaults...)
		sc.RouterFaults = append(sc.RouterFaults, id)
		out = append(out, sc)
	}
	return out
}

// routerConfig resolves the scenario's router configuration with the
// small-model defaults applied.
func (sc *Scenario) routerConfig() router.Config {
	rc := router.DefaultConfig()
	rc.FaultTolerant = sc.FaultTolerant
	rc.VCs = 2
	rc.Classes = 1
	rc.Depth = 2
	if sc.VCs > 0 {
		rc.VCs = sc.VCs
	}
	if sc.Classes > 0 {
		rc.Classes = sc.Classes
	}
	if sc.Depth > 0 {
		rc.Depth = sc.Depth
	}
	return rc
}

// validate rejects scenarios the explorer would mangle silently.
func (sc *Scenario) validate() error {
	nodes := sc.Width * sc.Height
	for i, p := range sc.Packets {
		if p.Src < 0 || p.Src >= nodes || p.Dst < 0 || p.Dst >= nodes {
			return fmt.Errorf("packet %d: endpoints %d->%d outside the %d-node mesh", i, p.Src, p.Dst, nodes)
		}
		if p.Size < 1 {
			return fmt.Errorf("packet %d: size %d < 1", i, p.Size)
		}
	}
	if sc.SabotageNode >= nodes {
		return fmt.Errorf("sabotage node %d outside the %d-node mesh", sc.SabotageNode, nodes)
	}
	return nil
}

// ledger is the explorer's Traffic: it offers nothing on its own
// (injection is an explorer transition) and records every delivery as a
// (src, seq) key. Its contents are part of the explorer's state and are
// saved and restored alongside network snapshots.
type ledger struct {
	delivered map[uint64]bool
}

func deliveryKey(src int, seq uint64) uint64 { return uint64(src)<<48 | seq }

func (l *ledger) Offered(node int, c sim.Cycle) []*flit.Packet { return nil }

func (l *ledger) OnEject(p *flit.Packet, c sim.Cycle) []*flit.Packet {
	l.delivered[deliveryKey(p.Src, p.Seq)] = true
	return nil
}

// build constructs the network (instrumented with observer o when
// non-nil) and the delivery ledger, and applies the scenario's static
// faults.
func (sc *Scenario) build(o *obs.Observer) (*noc.Network, *ledger, error) {
	if err := sc.validate(); err != nil {
		return nil, nil, err
	}
	rc := sc.routerConfig()
	rc.Obs = o
	led := &ledger{delivered: make(map[uint64]bool)}
	n, err := noc.New(noc.Config{
		Width: sc.Width, Height: sc.Height, Topo: sc.Topo,
		Router: rc, Workers: 1, Retx: sc.Retx,
	}, led)
	if err != nil {
		return nil, nil, err
	}
	for _, lf := range sc.LinkFaults {
		if err := n.SetLinkFault(lf.Node, lf.Port, true); err != nil {
			n.Close()
			return nil, nil, err
		}
	}
	for _, id := range sc.RouterFaults {
		if err := n.SetRouterFault(id, true); err != nil {
			n.Close()
			return nil, nil, err
		}
	}
	return n, led, nil
}

// bySource groups the scenario's packets by source, preserving order.
func (sc *Scenario) bySource() [][]Packet {
	out := make([][]Packet, sc.Width*sc.Height)
	for _, p := range sc.Packets {
		out[p.Src] = append(out[p.Src], p)
	}
	return out
}
