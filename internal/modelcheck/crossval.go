package modelcheck

import (
	"fmt"
	"math"

	"gonoc/internal/core"
	"gonoc/internal/fault"
	"gonoc/internal/rng"
	"gonoc/internal/router"
	"gonoc/internal/topology"
)

// freshRouter builds the same standalone router the campaign uses: the
// centre node of a 3x3 mesh, so every port is populated.
func freshRouter(cfg router.Config) *core.Router {
	return core.MustNew(4, topology.NewMesh(3, 3), cfg)
}

// This file cross-validates the reliability numbers: the Monte-Carlo
// faults-to-failure campaign of internal/fault is checked against an
// exact combinatorial recomputation of the same expectation, derived
// independently from the router's Functional() failure predicate, and
// the campaign mean must fall inside the paper's theoretical bounds.
//
// The exact value uses the standard prefix identity for a uniformly
// random permutation of the n fault sites: with T the index of the
// first fault that kills the router and F_k the number of k-site
// subsets that leave it functional,
//
//	E[T] = sum_{k>=0} P(T > k) = sum_{k>=0} F_k / C(n, k).
//
// F_k factors over independent site groups. Under the paper's site
// universe (UniversePaper: no VA stage-2 and no SA stage-2 sites), the
// protected router fails iff some per-port group is wholly faulty —
// both RC copies, all VCs' VA1 arbiter sets, or the SA1 arbiter plus
// its bypass — or the crossbar globally loses an output (its mux dead
// and its secondary path dead, the latter via the demux leg or the
// neighbouring mux). Per-port groups contribute closed-form
// functional-subset polynomials; the crossbar's 2*ports sites are
// coupled through SecondaryOf, so its polynomial is enumerated over
// all 2^(2*ports) subsets. The polynomials convolve into F_k.

// groupPoly is f[j] = number of j-subsets of a group's sites that
// leave the group functional.
type groupPoly []float64

// allButFullPoly is the polynomial of a group of n sites that fails
// only when every site is faulty: f(j) = C(n, j) for j < n, 0 at n.
func allButFullPoly(n int) groupPoly {
	f := make(groupPoly, n+1)
	for j := 0; j < n; j++ {
		f[j] = binom(n, j)
	}
	return f
}

// xbPoly enumerates the protected crossbar's 2*ports coupled sites:
// bit i < ports is output i's primary mux, bit ports+i its secondary
// demux leg. The crossbar fails when some output loses both paths.
func xbPoly(ports int) groupPoly {
	f := make(groupPoly, 2*ports+1)
	secondaryOf := func(out int) int {
		// Mirrors crossbar.Protected.SecondaryOf: output 0 borrows
		// mux 1, output 1 borrows the last mux, output k borrows k-1.
		switch out {
		case 0:
			return 1
		case 1:
			return ports - 1
		default:
			return out - 1
		}
	}
	for mask := 0; mask < 1<<(2*ports); mask++ {
		functional := true
		for out := 0; out < ports; out++ {
			muxDead := mask&(1<<out) != 0
			secDead := mask&(1<<(ports+out)) != 0 || mask&(1<<secondaryOf(out)) != 0
			if muxDead && secDead {
				functional = false
				break
			}
		}
		if functional {
			f[popcount(mask)]++
		}
	}
	return f
}

func popcount(x int) int {
	c := 0
	for ; x != 0; x &= x - 1 {
		c++
	}
	return c
}

func binom(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	r := 1.0
	for i := 0; i < k; i++ {
		r = r * float64(n-i) / float64(i+1)
	}
	return r
}

// convolve returns h with h[k] = sum_j a[j]*b[k-j]: the functional
// k-subset counts of the union of two independent groups.
func convolve(a, b groupPoly) groupPoly {
	h := make(groupPoly, len(a)+len(b)-1)
	for i, av := range a {
		if av == 0 {
			continue
		}
		for j, bv := range b {
			h[i+j] += av * bv
		}
	}
	return h
}

// functionalSubsets returns F, with F[k] the number of k-subsets of
// the UniversePaper fault sites that leave the router functional, and
// the total site count n.
func functionalSubsets(cfg router.Config) (groupPoly, int) {
	if !cfg.FaultTolerant {
		// The baseline fails on its first fault anywhere: only the
		// empty set is functional.
		n := len(fault.SitesIn(cfg, fault.UniversePaper))
		return groupPoly{1}, n
	}
	f := groupPoly{1}
	for p := 0; p < cfg.Ports; p++ {
		f = convolve(f, allButFullPoly(2))       // RC primary + duplicate
		f = convolve(f, allButFullPoly(cfg.VCs)) // VA1 arbiter sets
		f = convolve(f, allButFullPoly(2))       // SA1 arbiter + bypass
	}
	f = convolve(f, xbPoly(cfg.Ports))
	n := 0
	for p := 0; p < cfg.Ports; p++ {
		n += 2 + cfg.VCs + 2 + 2
	}
	return f, n
}

// ExactMeanFaultsToFailure computes E[faults to failure] for cfg under
// the paper's site universe, exactly, from the same failure predicate
// the campaign samples. For the paper's protected 5-port 4-VC router
// the universe has 50 sites.
func ExactMeanFaultsToFailure(cfg router.Config) float64 {
	f, n := functionalSubsets(cfg)
	e := 0.0
	for k, fk := range f {
		if fk == 0 {
			continue
		}
		e += fk / binom(n, k)
	}
	return e
}

// MTTFEqualRate is the analytic mean time to router failure when every
// fault site fails independently at rate lambda (failures per hour):
// after k surviving faults the next site fails after a mean gap of
// 1/((n-k)*lambda), so
//
//	E[MTTF] = sum_k (F_k / C(n,k)) * 1 / ((n-k)*lambda).
//
// The equal-rate model is the bridge between the order-statistics view
// of the campaign (which ignores time) and the FIT-rate MTTF analysis
// of internal/reliability; SampleMTTFEqualRate checks it by direct
// simulation.
func MTTFEqualRate(cfg router.Config, lambda float64) float64 {
	f, n := functionalSubsets(cfg)
	e := 0.0
	for k, fk := range f {
		if fk == 0 || k >= n {
			continue
		}
		e += (fk / binom(n, k)) / (float64(n-k) * lambda)
	}
	return e
}

// SampleMTTFEqualRate estimates the same quantity by Monte Carlo: each
// trial draws an exponential failure time per site, applies faults in
// time order to a fresh router, and records the time Functional()
// first fails. Returns the sample mean and standard deviation.
func SampleMTTFEqualRate(cfg router.Config, lambda float64, trials int, seed uint64) (mean, stddev float64) {
	sites := fault.SitesIn(cfg, fault.UniversePaper)
	r := rng.New(seed)
	var sum, sumSq float64
	times := make([]float64, len(sites))
	order := make([]int, len(sites))
	for t := 0; t < trials; t++ {
		for i := range times {
			times[i] = r.Exp(1 / lambda) // Exp takes the mean, 1/rate
			order[i] = i
		}
		// Insertion sort by failure time: site counts are tiny.
		for i := 1; i < len(order); i++ {
			for j := i; j > 0 && times[order[j]] < times[order[j-1]]; j-- {
				order[j], order[j-1] = order[j-1], order[j]
			}
		}
		rt := freshRouter(cfg)
		died := times[order[len(order)-1]]
		for _, idx := range order {
			fault.Apply(rt, sites[idx], true)
			if !rt.Functional() {
				died = times[idx]
				break
			}
		}
		sum += died
		sumSq += died * died
	}
	mean = sum / float64(trials)
	if v := sumSq/float64(trials) - mean*mean; v > 0 {
		stddev = math.Sqrt(v)
	}
	return mean, stddev
}

// CrossCheck is the outcome of CrossValidate.
type CrossCheck struct {
	// ExactMean is the combinatorial E[faults to failure].
	ExactMean float64
	// Campaign is the simulated campaign under the same universe.
	Campaign fault.CampaignResult
	// CI is the half-width of the campaign mean's confidence interval
	// (z standard errors).
	CI float64
	// BoundsMin and BoundsMax are the paper's theoretical extremes.
	BoundsMin, BoundsMax int
	// OK reports that the campaign mean lies within CI of the exact
	// value and inside the theoretical bounds.
	OK bool
	// Detail explains a failed check.
	Detail string
}

// CrossValidate runs the faults-to-failure campaign for the protected
// router and checks its mean against the exact expectation (within z
// standard errors) and the paper's theoretical bounds. This is the
// model-checking tier's reliability cross-check: two independent
// derivations — sampled permutations through the live router versus
// closed-form counting over the failure predicate — must agree.
func CrossValidate(cfg router.Config, trials int, seed uint64, z float64) CrossCheck {
	exact := ExactMeanFaultsToFailure(cfg)
	camp := fault.FaultsToFailure(cfg, trials, seed, fault.UniversePaper)
	lo, hi := fault.TheoreticalBounds(cfg.Ports, cfg.VCs)
	cc := CrossCheck{
		ExactMean: exact,
		Campaign:  camp,
		CI:        z * camp.StdDev / math.Sqrt(float64(camp.Trials)),
		BoundsMin: lo,
		BoundsMax: hi,
		OK:        true,
	}
	if diff := math.Abs(camp.Mean - exact); diff > cc.CI {
		cc.OK = false
		cc.Detail = fmt.Sprintf("campaign mean %.3f is %.3f from exact %.3f, outside the %.1f-sigma interval %.3f",
			camp.Mean, diff, exact, z, cc.CI)
		return cc
	}
	if cfg.FaultTolerant && (camp.Mean < float64(lo) || camp.Mean > float64(hi) ||
		exact < float64(lo) || exact > float64(hi)) {
		cc.OK = false
		cc.Detail = fmt.Sprintf("mean outside theoretical bounds [%d, %d]: campaign %.3f, exact %.3f",
			lo, hi, camp.Mean, exact)
	}
	return cc
}

// String implements fmt.Stringer.
func (c CrossCheck) String() string {
	status := "OK"
	if !c.OK {
		status = "FAIL: " + c.Detail
	}
	return fmt.Sprintf("faults-to-failure: exact %.3f, campaign %.3f +/- %.3f (%d trials), bounds [%d, %d] — %s",
		c.ExactMean, c.Campaign.Mean, c.CI, c.Campaign.Trials, c.BoundsMin, c.BoundsMax, status)
}
