package modelcheck

import (
	"bytes"
	"testing"

	"gonoc/internal/rng"
)

// FuzzModelCheckConformance checks the explorer's state machinery
// against straight-line simulation: a random choice sequence is (a)
// executed on a machine that snapshot/restore round-trips after every
// choice — exactly how Explore materializes reachable states — and (b)
// replayed linearly on a fresh network. Both must land in the same
// canonical state with the same delivery ledger. Any divergence means
// a state the explorer believes reachable differs from what the
// simulator actually does, voiding the tier's proofs.
func FuzzModelCheckConformance(f *testing.F) {
	f.Add(uint64(1), uint8(24), uint8(0), uint8(0))
	f.Add(uint64(42), uint8(60), uint8(3), uint8(1))
	f.Add(uint64(7), uint8(40), uint8(8), uint8(5))
	f.Add(uint64(999), uint8(10), uint8(5), uint8(0))
	f.Fuzz(func(t *testing.T, seed uint64, steps, faultSel, sab uint8) {
		base := Ring(2, 2)
		sweep := SingleFaultSweep(base)
		sc := sweep[int(faultSel)%len(sweep)]
		if sab&1 != 0 {
			// Arm sabotage on fault-free variants only: a scenario that
			// cannot deliver is fine here, conformance is about state
			// agreement, but keep the space diverse.
			sc.SabotageNode = int(sab>>1) % 4
			sc.VCs, sc.Classes, sc.Depth = 1, 1, 1
			sc.LinkFaults = nil
			sc.RouterFaults = nil
		}

		// Machine A: random walk with a snapshot/restore round trip
		// after every choice, recording the trace.
		a, err := newMachine(&sc, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer a.Close()
		r := rng.New(seed)
		var trace []Choice
		var buf []Choice
		for i := 0; i < int(steps)%64; i++ {
			buf = a.choices(buf)
			c := buf[r.Intn(len(buf))]
			a.apply(c)
			trace = append(trace, c)
			// Round-trip through the explorer's state representation:
			// the restored state must be canonically identical to the
			// live one.
			before := append([]byte(nil), a.key(nil)...)
			snap := a.n.Snapshot()
			shad := a.saveShadow()
			a.n.Step() // perturb
			a.n.Restore(snap)
			a.restoreShadow(shad)
			if after := a.key(nil); !bytes.Equal(before, after) {
				t.Fatalf("step %d (%v): snapshot/restore round trip diverged from live state", i, c)
			}
		}

		// Machine B: the same choices replayed linearly on a fresh
		// network, no snapshots involved.
		b, err := newMachine(&sc, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer b.Close()
		for _, c := range trace {
			b.apply(c)
		}

		ak, bk := a.key(nil), b.key(nil)
		if !bytes.Equal(ak, bk) {
			t.Fatalf("explorer-style execution and linear replay disagree after %d choices:\n%v", len(trace), trace)
		}
		if len(a.led.delivered) != len(b.led.delivered) {
			t.Fatalf("delivery ledgers disagree: %d vs %d packets", len(a.led.delivered), len(b.led.delivered))
		}
		for k := range a.led.delivered {
			if !b.led.delivered[k] {
				t.Fatalf("delivery %x present in explorer run, missing from linear replay", k)
			}
		}
	})
}
