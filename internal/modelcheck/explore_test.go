package modelcheck

import (
	"strings"
	"testing"

	"gonoc/internal/noc"
)

// TestExploreRing2x2FaultFree exhausts the fault-free 2x2 ring and
// requires a proof: every interleaving of the four injections with
// ticking delivers all four packets and drains.
func TestExploreRing2x2FaultFree(t *testing.T) {
	res, err := Explore(Ring(2, 2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Proved {
		t.Fatalf("verdict %v, want PROVED: %s", res.Verdict, res.Detail)
	}
	if res.Expected != 4 {
		t.Errorf("expected-delivery obligation %d, want 4", res.Expected)
	}
	if res.States < 10 || res.Terminals < 1 {
		t.Errorf("implausible exploration: %d states, %d terminals", res.States, res.Terminals)
	}
	t.Logf("fault-free 2x2: %d states, %d transitions, depth %d in %v",
		res.States, res.Transitions, res.Deepest, res.Elapsed)
}

// TestExploreRing2x2SingleFaultSweep proves delivery and deadlock
// freedom for the 2x2 ring under every single link fault and every
// single router fault, with NI retransmission armed — the model-checked
// counterpart of the statistical single-fault delivery suite in
// internal/noc.
func TestExploreRing2x2SingleFaultSweep(t *testing.T) {
	if raceEnabled {
		t.Skip("retransmission countdown state defeats cross-time merging; too slow under -race (the CI modelcheck tier runs it without the detector)")
	}
	base := Ring(2, 2)
	base.Retx = noc.RetxConfig{Timeout: 64, MaxRetries: 2}
	for _, sc := range SingleFaultSweep(base) {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			res, err := Explore(sc, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if res.Verdict != Proved {
				t.Fatalf("verdict %v, want PROVED: %s\n%s", res.Verdict, res.Detail, FormatCounterexample(res))
			}
			t.Logf("%s: %d states, expected %d, %v", sc.Name, res.States, res.Expected, res.Elapsed)
		})
	}
}

// TestExploreRing2x2TorusSingleFaultSweep proves delivery and deadlock
// freedom for the 2x2 ring on a torus under every single link fault —
// the wrap links included — and every single router fault: the
// exhaustive proof that the dateline-aware detour tables (routing.go's
// wrap-link rule) are deadlock free. Static faults on the ring workload
// never lose a packet, so retransmission stays off and the state spaces
// stay exhaustible in seconds.
func TestExploreRing2x2TorusSingleFaultSweep(t *testing.T) {
	if raceEnabled {
		t.Skip("13 exhaustive scenarios are too slow under -race (the CI modelcheck tier runs the torus sweep without the detector)")
	}
	if testing.Short() {
		t.Skip("13 exhaustive scenarios; skipped in -short")
	}
	sweep := SingleFaultSweep(RingOn("torus", 2, 2))
	// Fault free + 8 links (every torus node has both an E and an S
	// ring link) + 4 routers.
	if len(sweep) != 13 {
		t.Fatalf("torus sweep has %d scenarios, want 13", len(sweep))
	}
	for _, sc := range sweep {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			res, err := Explore(sc, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if res.Verdict != Proved {
				t.Fatalf("verdict %v, want PROVED: %s\n%s", res.Verdict, res.Detail, FormatCounterexample(res))
			}
			t.Logf("%s: %d states, expected %d, %v", sc.Name, res.States, res.Expected, res.Elapsed)
		})
	}
}

// TestExploreRing2x2Baseline exhausts the 2x2 ring on the unprotected
// baseline router: the deadlock-freedom and delivery proofs must hold
// with the FT mechanisms compiled out, not just worked around.
func TestExploreRing2x2Baseline(t *testing.T) {
	sc := Ring(2, 2)
	sc.Name = "ring-2x2-baseline"
	sc.FaultTolerant = false
	res, err := Explore(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Proved {
		t.Fatalf("verdict %v, want PROVED: %s", res.Verdict, res.Detail)
	}
	if res.Expected != 4 {
		t.Errorf("expected-delivery obligation %d, want 4", res.Expected)
	}
	t.Logf("baseline 2x2: %d states, depth %d in %v", res.States, res.Deepest, res.Elapsed)
}

// TestExploreRing2x3 runs a bounded exploration of the 2x3 ring. Six
// concurrent injections blow the space far past exhaustive reach (tens
// of millions of states), so this is a bounded model check: within the
// state cap no deadlock, livelock, or delivery violation may surface.
// A violation verdict fails regardless of the bound; -short skips it.
func TestExploreRing2x3(t *testing.T) {
	if testing.Short() {
		t.Skip("2x3 bounded exploration in -short mode")
	}
	if raceEnabled {
		t.Skip("65k-state bounded exploration is too slow under -race; the plain test run covers it")
	}
	res, err := Explore(Ring(2, 3), Options{MaxStates: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Proved && res.Verdict != Exhausted {
		t.Fatalf("verdict %v within the bound, want PROVED or EXHAUSTED: %s\n%s",
			res.Verdict, res.Detail, FormatCounterexample(res))
	}
	if res.States < 1<<15 {
		t.Errorf("bounded run explored only %d states; the bound should be reachable", res.States)
	}
	t.Logf("bounded 2x3: %v after %d states, %d transitions, depth %d in %v",
		res.Verdict, res.States, res.Transitions, res.Deepest, res.Elapsed)
}

// sabotageScenario is a configuration a single lost credit genuinely
// kills: three packets cross the same link in sequence through depth-1
// single-VC buffers, so once the explorer discards the credit returned
// by an earlier packet, the followers can never be granted the link
// again.
func sabotageScenario() Scenario {
	return Scenario{
		Name:          "sabotage-credit-loss",
		Width:         2,
		Height:        2,
		FaultTolerant: true,
		VCs:           1,
		Classes:       1,
		Depth:         1,
		SabotageNode:  0,
		Packets: []Packet{
			{Src: 0, Dst: 1, Size: 1},
			{Src: 0, Dst: 1, Size: 1},
			{Src: 0, Dst: 1, Size: 1},
		},
	}
}

// TestSabotageFindsDeadlock arms the credit-loss sabotage transition —
// a flow-control corruption the design does not claim to tolerate —
// and requires the checker to find the resulting deadlock and emit a
// replayable counterexample. This is the tier's self-test: a checker
// that cannot find a planted deadlock proves nothing when it reports
// PROVED elsewhere.
func TestSabotageFindsDeadlock(t *testing.T) {
	sc := sabotageScenario()
	res, err := Explore(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Deadlocked {
		t.Fatalf("verdict %v, want DEADLOCK (detail: %s)", res.Verdict, res.Detail)
	}
	if len(res.Counterexample) == 0 {
		t.Fatal("deadlock verdict without a counterexample trace")
	}

	// The counterexample must be genuine: replaying it from scratch
	// must land in a state that retains traffic and that ticking does
	// not change.
	n, err := Replay(sc, res.Counterexample, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if n.Stats().InFlight() == 0 {
		t.Error("replayed counterexample state holds no stuck traffic")
	}
	before := n.StateHash()
	n.Step()
	if after := n.StateHash(); after != before {
		t.Errorf("replayed state is not quiescent: hash %016x -> %016x", before, after)
	}

	report := FormatCounterexample(res)
	for _, want := range []string{"DEADLOCK", "sabotage(node=0)", "replayed end state"} {
		if !strings.Contains(report, want) {
			t.Errorf("counterexample report missing %q:\n%s", want, report)
		}
	}
}

// TestCheckMeshSweep drives the public sweep entry point the CLI and CI
// use, on the smallest mesh.
func TestCheckMeshSweep(t *testing.T) {
	results, err := CheckMesh(2, 2, noc.RetxConfig{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Fault free + 4 links + 4 routers.
	if len(results) != 9 {
		t.Fatalf("sweep ran %d scenarios, want 9", len(results))
	}
	for _, r := range results {
		if r.Verdict != Proved {
			t.Errorf("%s: %v (%s)", r.Scenario.Name, r.Verdict, r.Detail)
		}
	}
	if out := FormatResults(results); !strings.Contains(out, "PROVED") {
		t.Errorf("formatted sweep lacks verdicts:\n%s", out)
	}
}

// TestMonteCarloRing3x3 samples the 3x3 ring — beyond exhaustive
// reach — and requires zero delivery violations with a meaningful
// Chernoff bound.
func TestMonteCarloRing3x3(t *testing.T) {
	walks := 128
	if testing.Short() {
		walks = 24
	}
	res, err := MonteCarlo(Ring(3, 3), MCOptions{Walks: walks, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 0 {
		t.Fatalf("%d delivery violations in %d random walks; first: %v",
			res.Violations, res.Walks, res.FirstViolation)
	}
	if res.Bound <= 0 || res.Bound >= 1 {
		t.Errorf("degenerate violation-probability bound %g", res.Bound)
	}
	t.Logf("%s", res)
}

// TestMonteCarloFindsSabotageDeadlock checks the sampled mode can also
// detect the planted credit-loss failure, reporting the walk that hit
// it.
func TestMonteCarloFindsSabotageDeadlock(t *testing.T) {
	res, err := MonteCarlo(sabotageScenario(), MCOptions{Walks: 256, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations == 0 {
		t.Fatal("random walks never hit the planted credit-loss deadlock")
	}
	if res.FirstViolation == nil {
		t.Fatal("violation counted but no walk trace recorded")
	}
}

// TestExploreBudgetExhaustion checks the resource-bound path: a state
// cap far below the space's size must yield EXHAUSTED, not a bogus
// proof.
func TestExploreBudgetExhaustion(t *testing.T) {
	res, err := Explore(Ring(2, 2), Options{MaxStates: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Exhausted {
		t.Fatalf("verdict %v under an 8-state cap, want EXHAUSTED", res.Verdict)
	}
}

// TestScenarioValidation rejects malformed scenarios instead of
// exploring garbage.
func TestScenarioValidation(t *testing.T) {
	sc := Ring(2, 2)
	sc.Packets[0].Dst = 99
	if _, err := Explore(sc, Options{}); err == nil {
		t.Error("out-of-range destination accepted")
	}
	sc = Ring(2, 2)
	sc.Packets[0].Size = 0
	if _, err := Explore(sc, Options{}); err == nil {
		t.Error("zero-size packet accepted")
	}
	sc = Ring(2, 2)
	sc.SabotageNode = 99
	if _, err := Explore(sc, Options{}); err == nil {
		t.Error("out-of-range sabotage node accepted")
	}
}
