package modelcheck

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
	"time"

	"gonoc/internal/flit"
	"gonoc/internal/noc"
	"gonoc/internal/obs"
)

// Op is an explorer transition kind.
type Op uint8

const (
	// OpTick advances the network one cycle (noc.Network.Step).
	OpTick Op = iota
	// OpInject offers the named source's next scheduled packet at the
	// current cycle, without advancing time — so every same-cycle
	// subset of injections is reachable as a sequence of OpInjects.
	OpInject
	// OpSabotage discards one pending upstream credit at the
	// scenario's sabotage node (noc.DropPendingCredit).
	OpSabotage
)

// Choice is one transition of an execution: an Op plus its argument
// (the source node for OpInject; unused otherwise).
type Choice struct {
	Op  Op
	Src int
}

// String implements fmt.Stringer.
func (c Choice) String() string {
	switch c.Op {
	case OpTick:
		return "tick"
	case OpInject:
		return fmt.Sprintf("inject(src=%d)", c.Src)
	case OpSabotage:
		return fmt.Sprintf("sabotage(node=%d)", c.Src)
	default:
		return fmt.Sprintf("Choice(%d,%d)", c.Op, c.Src)
	}
}

// Verdict is the outcome of an exploration.
type Verdict int

const (
	// Proved: the reachable state space was exhausted and every
	// execution delivers all reachable traffic with no deadlock or
	// livelock. This is a proof for the scenario, not a sample.
	Proved Verdict = iota
	// Deadlocked: a reachable quiescent state retains undelivered
	// or in-flight traffic and ticking no longer changes the state.
	Deadlocked
	// Livelocked: a reachable cycle of distinct states exists under
	// pure ticking among fully-injected, undelivered states — the
	// network keeps moving but never completes delivery.
	Livelocked
	// Exhausted: a resource bound (states, depth or wall-clock
	// budget) was hit before the space was exhausted. No violation
	// was found within the bound; nothing is proved beyond it.
	Exhausted
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case Proved:
		return "PROVED"
	case Deadlocked:
		return "DEADLOCK"
	case Livelocked:
		return "LIVELOCK"
	case Exhausted:
		return "EXHAUSTED"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Options bounds an exploration. The zero value applies defaults.
type Options struct {
	// MaxStates caps the number of distinct states (default 1 << 20).
	MaxStates int
	// MaxDepth caps the transition depth of any execution explored
	// (default 4096).
	MaxDepth int
	// Budget is a wall-clock bound; 0 means none. The explorer checks
	// it between frontier expansions, so overshoot is one state's
	// work.
	Budget time.Duration
}

func (o Options) withDefaults() Options {
	if o.MaxStates <= 0 {
		o.MaxStates = 1 << 20
	}
	if o.MaxDepth <= 0 {
		o.MaxDepth = 4096
	}
	return o
}

// Result is the outcome of Explore.
type Result struct {
	Scenario Scenario
	Verdict  Verdict
	// States is the number of distinct reachable states visited;
	// Transitions counts explored edges between them.
	States, Transitions int
	// Terminals is the number of distinct terminal-success states.
	Terminals int
	// Expected is the number of scheduled packets with a reachable
	// destination — the delivery obligation every execution must meet.
	Expected int
	// Deepest is the largest transition depth reached.
	Deepest int
	// Counterexample is the choice sequence from the initial state to
	// the violating state (plus, for livelocks, one full cycle); empty
	// unless the verdict is Deadlocked or Livelocked. Replay it with
	// Replay to regenerate the violating execution on a live network.
	Counterexample []Choice
	// Detail is a one-line human description of the verdict.
	Detail string
	// Elapsed is the exploration wall-clock time.
	Elapsed time.Duration
}

// machine binds a network, its delivery ledger and the scenario's
// injection schedule into the explorer's transition system.
type machine struct {
	sc       *Scenario
	n        *noc.Network
	led      *ledger
	schedule [][]Packet
	injected []uint8
	// minInjectSrc is the partial-order reduction cursor: same-cycle
	// injections from distinct sources commute (they touch disjoint
	// NI queues and per-source sequence counters, and nothing
	// cycle-order-dependent enters the canonical state), so only the
	// ascending-source order of every same-cycle injection subset is
	// explored. A tick resets the cursor.
	minInjectSrc int
	sabotaged    bool
	expected     int
}

// newMachine builds the scenario's transition system. Observer o may be
// nil; it is non-nil only for counterexample replay.
func newMachine(sc *Scenario, o *obs.Observer) (*machine, error) {
	n, led, err := sc.build(o)
	if err != nil {
		return nil, err
	}
	m := &machine{
		sc:       sc,
		n:        n,
		led:      led,
		schedule: sc.bySource(),
		injected: make([]uint8, sc.Width*sc.Height),
	}
	// The delivery obligation: every scheduled packet whose endpoints
	// the static fault set leaves connected. Unreachable packets are
	// dropped (and counted) at offer time by the network itself.
	for _, p := range sc.Packets {
		if m.n.Reachable(p.Src, p.Dst) {
			m.expected++
		}
	}
	return m, nil
}

func (m *machine) Close() { m.n.Close() }

// apply executes one transition. Applying a disabled choice is a
// programming error and panics.
func (m *machine) apply(c Choice) {
	switch c.Op {
	case OpTick:
		m.n.Step()
		m.minInjectSrc = 0
	case OpInject:
		next := int(m.injected[c.Src])
		if next >= len(m.schedule[c.Src]) {
			panic(fmt.Sprintf("modelcheck: inject from exhausted source %d", c.Src))
		}
		p := m.schedule[c.Src][next]
		m.injected[c.Src]++
		m.minInjectSrc = c.Src
		m.n.Inject(p.Src, &flit.Packet{Dst: p.Dst, Class: p.Class, Size: p.Size})
	case OpSabotage:
		// DropPendingCredit reports false when no credit is latched;
		// the resulting no-op state then dedups against its parent, so
		// the choice is effectively re-armed until it lands.
		if m.n.DropPendingCredit(c.Src) {
			m.sabotaged = true
		}
	default:
		panic(fmt.Sprintf("modelcheck: unknown op %d", c.Op))
	}
}

// choices returns the transitions enabled in the current state. OpTick
// is always enabled; OpInject per source with scheduled packets left;
// OpSabotage while armed and unused.
func (m *machine) choices(buf []Choice) []Choice {
	buf = buf[:0]
	buf = append(buf, Choice{Op: OpTick})
	for src := m.minInjectSrc; src < len(m.schedule); src++ {
		if int(m.injected[src]) < len(m.schedule[src]) {
			buf = append(buf, Choice{Op: OpInject, Src: src})
		}
	}
	if m.sc.SabotageNode >= 0 && !m.sabotaged {
		buf = append(buf, Choice{Op: OpSabotage, Src: m.sc.SabotageNode})
	}
	return buf
}

// fullyInjected reports whether every scheduled packet has been offered.
func (m *machine) fullyInjected() bool {
	for src := range m.schedule {
		if int(m.injected[src]) < len(m.schedule[src]) {
			return false
		}
	}
	return true
}

// terminal reports terminal success: everything injected, every
// reachable packet delivered, and the network fully drained — no
// in-flight flits and no armed retransmission timers.
func (m *machine) terminal() bool {
	return m.fullyInjected() &&
		len(m.led.delivered) == m.expected &&
		m.n.Stats().InFlight() == 0 &&
		m.n.PendingRetx() == 0
}

// key builds the canonical state identity: the network's cycle-free
// canonical encoding plus the explorer-side state (injection progress,
// the delivery ledger, the sabotage flag). Two states with equal keys
// have identical futures.
func (m *machine) key(buf []byte) []byte {
	buf = m.n.AppendCanonical(buf[:0])
	for _, c := range m.injected {
		buf = append(buf, c)
	}
	keys := make([]uint64, 0, len(m.led.delivered))
	for k := range m.led.delivered {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		buf = binary.AppendUvarint(buf, k)
	}
	if m.sabotaged {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = append(buf, byte(m.minInjectSrc))
	return buf
}

// shadow is the explorer-side state saved beside each network snapshot.
type shadow struct {
	injected     []uint8
	delivered    []uint64
	minInjectSrc int
	sabotaged    bool
}

func (m *machine) saveShadow() shadow {
	s := shadow{
		injected:     append([]uint8{}, m.injected...),
		minInjectSrc: m.minInjectSrc,
		sabotaged:    m.sabotaged,
	}
	for k := range m.led.delivered {
		s.delivered = append(s.delivered, k)
	}
	return s
}

func (m *machine) restoreShadow(s shadow) {
	copy(m.injected, s.injected)
	m.minInjectSrc = s.minInjectSrc
	m.sabotaged = s.sabotaged
	clear(m.led.delivered)
	for _, k := range s.delivered {
		m.led.delivered[k] = true
	}
}

// edge records how a state was first reached, for counterexample
// reconstruction.
type edge struct {
	parent int32
	choice Choice
}

// Explore exhaustively enumerates the scenario's reachable state space
// under opt's bounds and returns the verdict. The proof obligation
// checked in every reachable state: ticking a fully-injected state must
// make progress toward (and eventually reach) terminal success — a
// quiescent self-loop short of it is a deadlock, a longer tick-cycle a
// livelock. Injection interleavings are the explorer's nondeterminism;
// the network itself is deterministic per transition.
func Explore(sc Scenario, opt Options) (Result, error) {
	opt = opt.withDefaults()
	start := time.Now()
	m, err := newMachine(&sc, nil)
	if err != nil {
		return Result{}, err
	}
	defer m.Close()

	res := Result{Scenario: sc, Expected: m.expected}
	finish := func(v Verdict, detail string) (Result, error) {
		res.Verdict = v
		res.Detail = detail
		res.Elapsed = time.Since(start)
		return res, nil
	}

	type frontierEntry struct {
		id    int32
		snap  *noc.Snapshot
		shad  shadow
		depth int
	}

	visited := make(map[string]int32)
	var edges []edge
	// tickSucc[id] is id's tick-successor state, recorded for every
	// expanded state; terminalAt marks terminal-success states, which
	// are not expanded. The livelock pass walks tick chains through
	// fully-injected states only (injection counts are monotone, so
	// any cycle is made of ticks alone).
	tickSucc := map[int32]int32{}
	terminalAt := map[int32]bool{}
	fullAt := map[int32]bool{}

	rootKey := string(m.key(nil))
	visited[rootKey] = 0
	edges = append(edges, edge{parent: -1})
	frontier := []frontierEntry{{id: 0, snap: m.n.Snapshot(), shad: m.saveShadow()}}
	if m.terminal() {
		terminalAt[0] = true
		res.Terminals++
		frontier = nil
	}
	fullAt[0] = m.fullyInjected()
	res.States = 1

	// trace reconstructs the choice path from the root to state id.
	trace := func(id int32) []Choice {
		var out []Choice
		for id > 0 {
			out = append(out, edges[id].choice)
			id = edges[id].parent
		}
		for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
			out[i], out[j] = out[j], out[i]
		}
		return out
	}

	var choiceBuf []Choice
	var keyBuf []byte
	for len(frontier) > 0 {
		if opt.Budget > 0 && time.Since(start) > opt.Budget {
			return finish(Exhausted, fmt.Sprintf("wall-clock budget %v exhausted at %d states", opt.Budget, res.States))
		}
		// Pop breadth-first: counterexamples come out minimal-depth.
		cur := frontier[0]
		frontier = frontier[1:]
		if cur.depth >= opt.MaxDepth {
			return finish(Exhausted, fmt.Sprintf("depth bound %d reached at %d states", opt.MaxDepth, res.States))
		}

		// The enabled set derives from the shadow alone, so the parent
		// network state only needs restoring per applied choice.
		m.restoreShadow(cur.shad)
		choiceBuf = m.choices(choiceBuf)
		enabled := append([]Choice{}, choiceBuf...)

		for _, c := range enabled {
			m.n.Restore(cur.snap)
			m.restoreShadow(cur.shad)
			m.apply(c)
			res.Transitions++

			keyBuf = m.key(keyBuf)
			k := string(keyBuf)
			id, seen := visited[k]
			if !seen {
				id = int32(len(edges))
				visited[k] = id
				edges = append(edges, edge{parent: cur.id, choice: c})
				res.States++
				if d := cur.depth + 1; d > res.Deepest {
					res.Deepest = d
				}
				fullAt[id] = m.fullyInjected()
				if m.terminal() {
					terminalAt[id] = true
					res.Terminals++
				} else {
					frontier = append(frontier, frontierEntry{
						id: id, snap: m.n.Snapshot(), shad: m.saveShadow(), depth: cur.depth + 1,
					})
				}
				if res.States > opt.MaxStates {
					return finish(Exhausted, fmt.Sprintf("state bound %d exceeded", opt.MaxStates))
				}
			}
			if c.Op == OpTick {
				tickSucc[cur.id] = id
				// A tick self-loop on a fully-injected, non-terminal
				// state is the classical deadlock: no transition
				// remains that could change anything.
				if id == cur.id && fullAt[cur.id] {
					res.Counterexample = append(trace(cur.id), Choice{Op: OpTick})
					return finish(Deadlocked, fmt.Sprintf(
						"quiescent state with %d/%d packets delivered and %d flits in flight",
						len(m.led.delivered), m.expected, m.n.Stats().InFlight()))
				}
			}
		}
	}

	// The space is exhausted. Every fully-injected state's tick chain
	// must reach a terminal-success state; tick is deterministic, so a
	// chain that revisits a state has found a livelock cycle.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]uint8, len(edges))
	for id := range edges {
		if !fullAt[int32(id)] {
			continue
		}
		var chain []int32
		at := int32(id)
		for {
			if terminalAt[at] || color[at] == black {
				break
			}
			if color[at] == gray {
				// `at` is on the current chain: a tick cycle. Emit the
				// path to the cycle entry plus one full lap.
				lap := 0
				for i, s := range chain {
					if s == at {
						lap = len(chain) - i
						break
					}
				}
				ce := trace(at)
				for i := 0; i < lap; i++ {
					ce = append(ce, Choice{Op: OpTick})
				}
				res.Counterexample = ce
				return finish(Livelocked, fmt.Sprintf("tick cycle of %d states never completes delivery", lap))
			}
			color[at] = gray
			chain = append(chain, at)
			next, ok := tickSucc[at]
			if !ok {
				// Unexpanded (can only happen under a bound that was
				// already reported); treat as unknown-safe.
				break
			}
			at = next
		}
		for _, s := range chain {
			color[s] = black
		}
	}

	return finish(Proved, fmt.Sprintf(
		"all %d states deliver %d/%d packets; %d terminal states",
		res.States, m.expected, m.expected, res.Terminals))
}

// Replay rebuilds the scenario from scratch and applies trace choice by
// choice, returning the machine's network for inspection. When o is
// non-nil the network is built instrumented, so the replay captures obs
// trace events and spans for the counterexample report.
func Replay(sc Scenario, trace []Choice, o *obs.Observer) (*noc.Network, error) {
	m, err := newMachine(&sc, o)
	if err != nil {
		return nil, err
	}
	for _, c := range trace {
		m.apply(c)
	}
	return m.n, nil
}

// FormatCounterexample renders a failed Result as a human-readable
// report: the verdict, the choice trace, and — by replaying the trace
// on an instrumented network — the per-packet hop spans of the stuck
// execution.
func FormatCounterexample(res Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s — %s\n", res.Scenario.Name, res.Verdict, res.Detail)
	fmt.Fprintf(&b, "counterexample (%d choices):\n", len(res.Counterexample))
	for i, c := range res.Counterexample {
		fmt.Fprintf(&b, "  %3d. %s\n", i+1, c)
	}
	o := obs.New(1 << 16)
	n, err := Replay(res.Scenario, res.Counterexample, o)
	if err != nil {
		fmt.Fprintf(&b, "replay failed: %v\n", err)
		return b.String()
	}
	defer n.Close()
	st := n.Stats()
	fmt.Fprintf(&b, "replayed end state: cycle %d, %d created, %d delivered, %d in flight, %d dropped\n",
		n.Now(), st.Created(), st.Ejected(), st.InFlight(), st.Dropped())
	if spans := obs.FormatSpans(n.Spans(), 8); spans != "" {
		b.WriteString(spans)
	}
	return b.String()
}
