package modelcheck

import (
	"fmt"
	"strings"

	"gonoc/internal/noc"
)

// CheckMesh runs the standard verification sweep for a w x h mesh: the
// ring scenario fault free, then under every single link fault and
// every single router fault, each explored exhaustively under opt. It
// stops at the first violation. This is what `noctool check` and the
// CI tier run.
func CheckMesh(w, h int, retx noc.RetxConfig, opt Options) ([]Result, error) {
	return CheckTopo("", w, h, retx, opt)
}

// CheckTopo is CheckMesh on an explicit topology family; "torus" sweeps
// every ring link including the wraps, proving the dateline-aware
// detour tables deadlock free and fully delivering under every single
// fault site.
func CheckTopo(topo string, w, h int, retx noc.RetxConfig, opt Options) ([]Result, error) {
	base := RingOn(topo, w, h)
	base.Retx = retx
	var out []Result
	for _, sc := range SingleFaultSweep(base) {
		res, err := Explore(sc, opt)
		if err != nil {
			return out, fmt.Errorf("%s: %w", sc.Name, err)
		}
		out = append(out, res)
		if res.Verdict == Deadlocked || res.Verdict == Livelocked {
			return out, nil
		}
	}
	return out, nil
}

// FormatResults renders a sweep outcome as a one-line-per-scenario
// table plus, for a failed scenario, the full counterexample report.
func FormatResults(results []Result) string {
	var b strings.Builder
	for _, r := range results {
		fmt.Fprintf(&b, "%-28s %-9s %8d states %9d transitions  depth %-4d %8s  %s\n",
			r.Scenario.Name, r.Verdict, r.States, r.Transitions, r.Deepest,
			r.Elapsed.Round(1000000), r.Detail)
	}
	for _, r := range results {
		if len(r.Counterexample) > 0 {
			b.WriteString("\n")
			b.WriteString(FormatCounterexample(r))
		}
	}
	return b.String()
}
