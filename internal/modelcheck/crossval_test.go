package modelcheck

import (
	"math"
	"testing"

	"gonoc/internal/fault"
	"gonoc/internal/reliability"
	"gonoc/internal/router"
)

// TestFunctionalSubsetsMatchRouter checks the combinatorial group model
// against the real failure predicate by direct enumeration: for every
// single- and two-site fault subset of the paper universe, applying the
// subset to a live router must agree with the model's functional-subset
// counts. This pins the closed-form F_k to the implementation, not to
// the derivation's assumptions.
func TestFunctionalSubsetsMatchRouter(t *testing.T) {
	cfg := router.DefaultConfig()
	cfg.FaultTolerant = true
	sites := fault.SitesIn(cfg, fault.UniversePaper)
	f, n := functionalSubsets(cfg)
	if n != len(sites) {
		t.Fatalf("model counts %d sites, universe has %d", n, len(sites))
	}
	if n != 50 {
		t.Errorf("paper universe of the 5-port 4-VC router has %d sites, want 50", n)
	}

	count := func(k int) float64 {
		// Enumerate all k-subsets (k <= 2) against a live router.
		functional := 0.0
		switch k {
		case 1:
			for i := range sites {
				r := freshRouter(cfg)
				fault.Apply(r, sites[i], true)
				if r.Functional() {
					functional++
				}
			}
		case 2:
			for i := range sites {
				for j := i + 1; j < len(sites); j++ {
					r := freshRouter(cfg)
					fault.Apply(r, sites[i], true)
					fault.Apply(r, sites[j], true)
					if r.Functional() {
						functional++
					}
				}
			}
		}
		return functional
	}
	if got, want := count(1), f[1]; got != want {
		t.Errorf("functional 1-subsets: router says %.0f, model says %.0f", got, want)
	}
	if got, want := count(2), f[2]; got != want {
		t.Errorf("functional 2-subsets: router says %.0f, model says %.0f", got, want)
	}
}

// TestExactMeanWithinTheory checks the exact expectation against the
// paper's analytical extremes and the baseline's trivial value.
func TestExactMeanWithinTheory(t *testing.T) {
	cfg := router.DefaultConfig()
	cfg.FaultTolerant = true
	exact := ExactMeanFaultsToFailure(cfg)
	lo, hi := fault.TheoreticalBounds(cfg.Ports, cfg.VCs)
	if exact < float64(lo) || exact > float64(hi) {
		t.Errorf("exact mean %.3f outside theoretical bounds [%d, %d]", exact, lo, hi)
	}
	// The SPF analysis (Section VIII-E) estimates the same quantity by
	// per-stage accounting; the exact value must land in its ballpark
	// (same order, below the optimistic per-stage mean).
	spf := reliability.AnalyzeSPF(cfg.Ports, cfg.VCs, 0.31)
	if exact > spf.MeanFaults || exact < spf.MeanFaults/4 {
		t.Errorf("exact mean %.3f implausible against the paper's per-stage mean %.1f", exact, spf.MeanFaults)
	}

	base := router.DefaultConfig()
	base.FaultTolerant = false
	if got := ExactMeanFaultsToFailure(base); got != 1 {
		t.Errorf("baseline exact mean %.3f, want exactly 1 (first fault kills it)", got)
	}
	t.Logf("exact E[faults to failure]: protected %.4f, bounds [%d, %d], paper per-stage mean %.1f",
		exact, lo, hi, spf.MeanFaults)
}

// TestCrossValidateCampaign is the reliability cross-check the issue
// tier exists for: the Monte-Carlo campaign of internal/fault must
// agree with the independent combinatorial recomputation within its
// confidence interval, and both must respect the paper's bounds.
func TestCrossValidateCampaign(t *testing.T) {
	trials := 4000
	if testing.Short() {
		trials = 800
	}
	cfg := router.DefaultConfig()
	cfg.FaultTolerant = true
	cc := CrossValidate(cfg, trials, 12345, 4)
	if !cc.OK {
		t.Fatalf("cross-validation failed: %s", cc)
	}
	if cc.Campaign.Min < cc.BoundsMin || cc.Campaign.Max > cc.BoundsMax {
		t.Errorf("campaign extremes [%d, %d] escape theoretical bounds [%d, %d]",
			cc.Campaign.Min, cc.Campaign.Max, cc.BoundsMin, cc.BoundsMax)
	}
	t.Logf("%s", cc)

	base := router.DefaultConfig()
	base.FaultTolerant = false
	bc := CrossValidate(base, 200, 99, 4)
	if bc.Campaign.Mean != 1 || bc.ExactMean != 1 {
		t.Errorf("baseline: campaign %.3f, exact %.3f, want both exactly 1", bc.Campaign.Mean, bc.ExactMean)
	}
}

// TestMTTFEqualRateBridge checks the analytic equal-rate MTTF against
// direct Monte-Carlo sampling of exponential site failures through the
// live router, within four standard errors.
func TestMTTFEqualRateBridge(t *testing.T) {
	trials := 3000
	if testing.Short() {
		trials = 600
	}
	cfg := router.DefaultConfig()
	cfg.FaultTolerant = true
	const lambda = 1e-6 // per-site failure rate, arbitrary units
	analytic := MTTFEqualRate(cfg, lambda)
	mean, stddev := SampleMTTFEqualRate(cfg, lambda, trials, 777)
	se := stddev / math.Sqrt(float64(trials))
	if diff := math.Abs(mean - analytic); diff > 4*se {
		t.Errorf("sampled MTTF %.4g is %.4g from analytic %.4g (4 s.e. = %.4g)", mean, diff, analytic, 4*se)
	}

	base := router.DefaultConfig()
	base.FaultTolerant = false
	baseMTTF := MTTFEqualRate(base, lambda)
	// Under equal rates the baseline dies at the first of its 35 site
	// failures: E = 1/(35*lambda).
	if want := 1 / (35 * lambda); math.Abs(baseMTTF-want)/want > 1e-9 {
		t.Errorf("baseline equal-rate MTTF %.6g, want %.6g", baseMTTF, want)
	}
	if analytic <= baseMTTF {
		t.Errorf("protection does not improve equal-rate MTTF: protected %.4g <= baseline %.4g", analytic, baseMTTF)
	}
	t.Logf("equal-rate MTTF: protected %.4g, baseline %.4g (x%.2f), sampled %.4g +/- %.2g",
		analytic, baseMTTF, analytic/baseMTTF, mean, se)
}
