//go:build !race

package modelcheck

// raceEnabled reports whether the race detector is compiled in. The
// exhaustive retransmission sweep is CPU-bound and gains nothing from
// the detector (the explorer is single-goroutine), so its test skips
// under -race; the CI model-checking tier runs it without the detector
// instead.
const raceEnabled = false
