package modelcheck

import (
	"fmt"
	"math"
	"time"

	"gonoc/internal/rng"
	"gonoc/internal/sim"
)

// MCOptions configures a Monte-Carlo walk campaign. The zero value
// applies defaults.
type MCOptions struct {
	// Walks is the number of independent random executions (default
	// 256).
	Walks int
	// MaxSteps bounds each walk's transition count before the drain
	// check (default 2048).
	MaxSteps int
	// DrainLimit bounds the post-walk drain in cycles (default 4096).
	DrainLimit int
	// Seed seeds the walk RNG.
	Seed uint64
	// Delta is the confidence parameter for the violation-probability
	// bound (default 1e-3, i.e. 99.9% confidence).
	Delta float64
}

func (o MCOptions) withDefaults() MCOptions {
	if o.Walks <= 0 {
		o.Walks = 256
	}
	if o.MaxSteps <= 0 {
		o.MaxSteps = 2048
	}
	if o.DrainLimit <= 0 {
		o.DrainLimit = 4096
	}
	if o.Delta <= 0 || o.Delta >= 1 {
		o.Delta = 1e-3
	}
	return o
}

// MCResult is the outcome of MonteCarlo.
type MCResult struct {
	Scenario   Scenario
	Walks      int
	Violations int
	// Bound is the Chernoff-Hoeffding upper bound on the per-walk
	// violation probability at confidence 1-Delta, valid when
	// Violations is zero: observing 0 failures in N independent walks
	// bounds p <= ln(1/delta)/N.
	Bound float64
	Delta float64
	// MeanSteps is the average walk length to terminal success.
	MeanSteps float64
	Elapsed   time.Duration
	// FirstViolation replays the first failing walk, when any.
	FirstViolation []Choice
}

// MonteCarlo samples random executions of the scenario instead of
// exhausting them: at every state one enabled transition is drawn
// uniformly, until the schedule is injected and MaxSteps transitions
// have run; the walk then drains the network with pure ticks and
// checks the same delivery obligation Explore proves. It is the
// statistical fallback for configurations whose state spaces exceed
// exhaustive bounds (3x3 and up).
func MonteCarlo(sc Scenario, opt MCOptions) (MCResult, error) {
	opt = opt.withDefaults()
	start := time.Now()
	m, err := newMachine(&sc, nil)
	if err != nil {
		return MCResult{}, err
	}
	defer m.Close()

	root := m.n.Snapshot()
	rootShadow := m.saveShadow()
	r := rng.New(opt.Seed)
	res := MCResult{Scenario: sc, Walks: opt.Walks, Delta: opt.Delta}
	var stepSum float64
	var choiceBuf []Choice

	for w := 0; w < opt.Walks; w++ {
		m.n.Restore(root)
		m.restoreShadow(rootShadow)
		var walk []Choice
		steps := 0
		for ; steps < opt.MaxSteps; steps++ {
			if m.terminal() {
				break
			}
			choiceBuf = m.choices(choiceBuf)
			c := choiceBuf[r.Intn(len(choiceBuf))]
			m.apply(c)
			walk = append(walk, c)
		}
		// Whatever the walk left in flight must drain and complete on
		// ticks alone — the deterministic tail of every execution.
		// Drain's limit is an absolute cycle number.
		drained := m.n.Drain(m.n.Now() + sim.Cycle(opt.DrainLimit))
		ok := drained && m.fullyInjected() && len(m.led.delivered) == m.expected
		if !ok {
			// A walk that ran out of steps before injecting everything
			// proved nothing either way; only count it as a violation
			// when the schedule completed and delivery still failed.
			if m.fullyInjected() {
				res.Violations++
				if res.FirstViolation == nil {
					res.FirstViolation = walk
				}
			}
		}
		stepSum += float64(steps)
	}
	res.MeanSteps = stepSum / float64(opt.Walks)
	if res.Violations == 0 {
		res.Bound = math.Log(1/opt.Delta) / float64(opt.Walks)
	} else {
		res.Bound = 1
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// String implements fmt.Stringer.
func (r MCResult) String() string {
	if r.Violations == 0 {
		return fmt.Sprintf("%s: 0 violations in %d walks (mean %.1f steps); P(violation) <= %.2e at %.1f%% confidence",
			r.Scenario.Name, r.Walks, r.MeanSteps, r.Bound, 100*(1-r.Delta))
	}
	return fmt.Sprintf("%s: %d violations in %d walks", r.Scenario.Name, r.Violations, r.Walks)
}
