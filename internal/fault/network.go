package fault

import (
	"fmt"

	"gonoc/internal/noc"
)

// ApplyNetwork injects (or with value false, repairs) site s at router
// routerID in a live network. The network-level kinds are dispatched to
// the network's link/router fault state — which activates fault-aware
// routing and, for packets already heading into the failure, produces
// link drops the NI retransmission layer recovers — and every in-router
// kind falls through to Apply on the target router.
func ApplyNetwork(n *noc.Network, routerID int, s Site, value bool) error {
	topo := n.Topo()
	if routerID < 0 || routerID >= topo.Nodes() {
		w, h := topo.Dims()
		return fmt.Errorf("fault: router %d outside %dx%d %s", routerID, w, h, topo.Kind())
	}
	switch s.Kind {
	case LinkDead:
		return n.SetLinkFault(routerID, s.Port, value)
	case RouterDead:
		return n.SetRouterFault(routerID, value)
	default:
		Apply(n.Router(routerID), s, value)
		return nil
	}
}
