// Package fault models permanent faults in the router pipeline: it
// enumerates every injectable fault site, runs Monte-Carlo
// faults-to-failure campaigns (the experimental counterpart of the
// paper's Section VIII analysis) and provides the scaled uniform-random
// fault injector used in the latency experiments (Section IX).
package fault

import (
	"fmt"

	"gonoc/internal/core"
	"gonoc/internal/router"
	"gonoc/internal/topology"
)

// Kind is the specific component class a fault hits.
type Kind int

// The injectable fault-site kinds of the protected router. The baseline
// router has only the kinds without a correction-circuitry counterpart.
const (
	// RCPrimary is an input port's primary routing-computation unit.
	RCPrimary Kind = iota
	// RCDuplicate is the protected router's spare RC unit.
	RCDuplicate
	// VA1ArbSet is one input VC's complete set of stage-1 VA arbiters.
	VA1ArbSet
	// VA2Arb is one downstream VC's stage-2 VA arbiter.
	VA2Arb
	// SA1Arb is one input port's stage-1 SA arbiter.
	SA1Arb
	// SA1Bypass is the protected router's SA bypass path (mux+register).
	SA1Bypass
	// SA2Arb is one output port's stage-2 SA arbiter.
	SA2Arb
	// XBMux is one output port's primary crossbar multiplexer.
	XBMux
	// XBSecondary is one output's secondary crossbar path (demux + Pk).
	XBSecondary

	// LinkDead is a failed inter-router link. Link faults are
	// network-level: they live outside any single router, so they are
	// injected with ApplyNetwork (not Apply) and are excluded from
	// Sites(). A dead link is bidirectional — both the flit channel and
	// the returning credit channel are severed.
	LinkDead
	// RouterDead is a completely failed router: all four of its mesh
	// links are dead and its NI neither injects nor ejects. Like
	// LinkDead it is network-level and applied with ApplyNetwork.
	RouterDead

	numKinds
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	names := [...]string{
		"RC primary", "RC duplicate", "VA1 arbiter set", "VA2 arbiter",
		"SA1 arbiter", "SA1 bypass", "SA2 arbiter", "XB mux", "XB secondary",
		"link dead", "router dead",
	}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Stage returns the pipeline stage a fault kind belongs to.
func (k Kind) Stage() core.StageID {
	switch k {
	case RCPrimary, RCDuplicate:
		return core.StageRC
	case VA1ArbSet, VA2Arb:
		return core.StageVA
	case SA1Arb, SA1Bypass:
		return core.StageSA
	default:
		return core.StageXB
	}
}

// Correction reports whether the site belongs to the correction circuitry
// (and therefore exists only in the protected router).
func (k Kind) Correction() bool {
	switch k {
	case RCDuplicate, SA1Bypass, XBSecondary:
		return true
	}
	return false
}

// Network reports whether the kind is a network-level fault (a dead link
// or router) rather than a site inside one router's pipeline. Network
// kinds are injected with ApplyNetwork, never Apply, and never appear in
// Sites().
func (k Kind) Network() bool { return k == LinkDead || k == RouterDead }

// Site is one injectable fault site in a router.
type Site struct {
	// Kind is the component class.
	Kind Kind
	// Port is the input port (RC/VA1/SA1 kinds) or output port (VA2/SA2/
	// XB kinds) the site belongs to.
	Port topology.Port
	// Index disambiguates within a port: the VC index for VA1ArbSet and
	// VA2Arb, unused otherwise.
	Index int
}

// String implements fmt.Stringer.
func (s Site) String() string {
	switch s.Kind {
	case VA1ArbSet, VA2Arb:
		return fmt.Sprintf("%v %v/vc%d", s.Kind, s.Port, s.Index)
	case RouterDead:
		return s.Kind.String()
	default:
		return fmt.Sprintf("%v %v", s.Kind, s.Port)
	}
}

// Sites enumerates every fault site of a router with configuration cfg.
// For the paper's protected 5-port, 4-VC router this yields 75 sites; the
// baseline router (FaultTolerant false) has the 55 non-correction sites.
func Sites(cfg router.Config) []Site {
	var out []Site
	for p := 0; p < cfg.Ports; p++ {
		port := topology.Port(p)
		out = append(out, Site{Kind: RCPrimary, Port: port})
		if cfg.FaultTolerant {
			out = append(out, Site{Kind: RCDuplicate, Port: port})
		}
		for v := 0; v < cfg.VCs; v++ {
			out = append(out, Site{Kind: VA1ArbSet, Port: port, Index: v})
			out = append(out, Site{Kind: VA2Arb, Port: port, Index: v})
		}
		out = append(out, Site{Kind: SA1Arb, Port: port})
		if cfg.FaultTolerant {
			out = append(out, Site{Kind: SA1Bypass, Port: port})
		}
		out = append(out, Site{Kind: SA2Arb, Port: port})
		out = append(out, Site{Kind: XBMux, Port: port})
		if cfg.FaultTolerant {
			out = append(out, Site{Kind: XBSecondary, Port: port})
		}
	}
	return out
}

// Apply injects (or with value false, repairs) the fault at site s in
// router r. Network-level kinds (LinkDead, RouterDead) cannot be applied
// to a single router and panic; use ApplyNetwork for those.
func Apply(r *core.Router, s Site, value bool) {
	switch s.Kind {
	case LinkDead, RouterDead:
		panic(fmt.Sprintf("fault: %v is a network-level fault; use ApplyNetwork", s.Kind))
	}
	switch s.Kind {
	case RCPrimary:
		r.SetRCFault(s.Port, 0, value)
	case RCDuplicate:
		r.SetRCFault(s.Port, 1, value)
	case VA1ArbSet:
		r.SetVA1Fault(s.Port, s.Index, value)
	case VA2Arb:
		r.SetVA2Fault(s.Port, s.Index, value)
	case SA1Arb:
		r.SetSA1Fault(s.Port, value)
	case SA1Bypass:
		r.SetSA1BypassFault(s.Port, value)
	case SA2Arb:
		r.SetSA2Fault(s.Port, value)
	case XBMux:
		r.SetXBFault(s.Port, value)
	case XBSecondary:
		r.SetXBSecondaryFault(s.Port, value)
	default:
		panic(fmt.Sprintf("fault: unknown kind %v", s.Kind))
	}
}
