package fault

import (
	"testing"

	"gonoc/internal/core"
	"gonoc/internal/noc"
	"gonoc/internal/topology"
	"gonoc/internal/traffic"
)

func TestIsFaultyMirrorsApply(t *testing.T) {
	mesh := topology.NewMesh(3, 3)
	r := core.MustNew(4, mesh, protCfg())
	for _, s := range Sites(protCfg()) {
		if IsFaulty(r, s) {
			t.Fatalf("fresh router reports %v faulty", s)
		}
		Apply(r, s, true)
		if !IsFaulty(r, s) {
			t.Fatalf("IsFaulty false after Apply(%v, true)", s)
		}
		Apply(r, s, false)
		if IsFaulty(r, s) {
			t.Fatalf("IsFaulty true after repair of %v", s)
		}
	}
}

func TestTransientInjectorExpires(t *testing.T) {
	cfg := noc.Config{Width: 4, Height: 4, Router: protCfg(), Warmup: 0}
	n := noc.MustNew(cfg, nil)
	ti := NewTransientInjector(n, 0.05, 20, 3)
	n.Run(200)
	if ti.Strikes == 0 {
		t.Fatal("no transient strikes")
	}
	// Stop striking; all outages must clear within Duration cycles.
	ti.Rate = 0
	n.Run(25)
	if ti.Active() != 0 {
		t.Fatalf("%d transients still active after expiry window", ti.Active())
	}
	// Every site must be healthy again.
	for node := 0; node < 16; node++ {
		rt := n.Router(node)
		for _, s := range Sites(protCfg()) {
			if IsFaulty(rt, s) {
				t.Fatalf("router %d site %v still faulty after expiry", node, s)
			}
		}
		if !rt.Functional() {
			t.Fatalf("router %d not functional after all transients expired", node)
		}
	}
}

func TestTransientTrafficSurvives(t *testing.T) {
	// Packets keep flowing and are conserved through a storm of
	// transients on the protected network.
	cfg := noc.Config{Width: 4, Height: 4, Router: protCfg(), Warmup: 0}
	src := traffic.NewSynthetic(16, 0.02, traffic.Uniform(16), traffic.Bimodal(1, 5, 0.5), 5)
	src.StopAt(5000)
	n := noc.MustNew(cfg, src)
	ti := NewTransientInjector(n, 0.01, 10, 7)
	n.Run(5000)
	ti.Rate = 0
	if !n.Drain(60000) {
		t.Fatalf("network did not drain after transient storm: %d in flight", n.Stats().InFlight())
	}
	st := n.Stats()
	if st.Created() != st.Ejected() {
		t.Fatalf("packet loss under transients: %d created, %d ejected", st.Created(), st.Ejected())
	}
	if ti.Strikes < 100 {
		t.Fatalf("storm too weak: %d strikes", ti.Strikes)
	}
}

func TestTransientRespectsPermanentFaults(t *testing.T) {
	cfg := noc.Config{Width: 2, Height: 2, Router: protCfg(), Warmup: 0}
	n := noc.MustNew(cfg, nil)
	// Permanently break a site, then let transients rain; the permanent
	// fault must never be "repaired" by a transient expiry.
	perm := Site{Kind: XBMux, Port: topology.East}
	Apply(n.Router(0), perm, true)
	NewTransientInjector(n, 0.3, 5, 11)
	n.Run(500)
	if !IsFaulty(n.Router(0), perm) {
		t.Fatal("transient injector repaired a permanent fault")
	}
}

func TestTransientLatencyImpactSmall(t *testing.T) {
	// A sparse transient rate should barely move latency — transients are
	// masked, the paper's motivation for focusing on permanents.
	run := func(rate float64) float64 {
		src := traffic.NewSynthetic(16, 0.02, traffic.Uniform(16), traffic.FixedSize(2), 9)
		n := noc.MustNew(noc.Config{Width: 4, Height: 4, Router: protCfg(), Warmup: 500}, src)
		if rate > 0 {
			NewTransientInjector(n, rate, 5, 13)
		}
		n.Run(8000)
		return n.Stats().AvgLatency()
	}
	clean := run(0)
	dirty := run(0.002)
	if dirty < clean {
		// Masking can even reorder slightly; only fail on silliness.
		t.Logf("transient run slightly faster: %.2f vs %.2f", dirty, clean)
	}
	if dirty > clean*1.25 {
		t.Fatalf("sparse transients raised latency too much: %.2f vs %.2f", dirty, clean)
	}
}
