package fault

import (
	"math"

	"gonoc/internal/core"
	"gonoc/internal/rng"
	"gonoc/internal/router"
	"gonoc/internal/stats"
	"gonoc/internal/topology"
)

// CampaignResult summarizes a Monte-Carlo faults-to-failure campaign.
type CampaignResult struct {
	// Trials is the number of independent fault sequences evaluated.
	Trials int
	// Mean is the average number of faults injected before the router
	// first became non-functional (the fault that kills it included).
	Mean float64
	// Min and Max are the observed extremes.
	Min, Max int
	// StdDev is the sample standard deviation.
	StdDev float64
	// P50, P95 and P99 are nearest-rank percentiles of the per-trial
	// fault counts.
	P50, P95, P99 int
}

// Universe selects which fault sites a campaign draws from.
type Universe int

const (
	// UniverseAll draws from every site of the router, including the VA
	// stage-2 and SA stage-2 arbiters. The router tolerates more of
	// these than the paper's conservative accounting admits, so observed
	// faults-to-failure can exceed the Section VIII-E maximum.
	UniverseAll Universe = iota
	// UniversePaper draws only from the sites the paper's SPF analysis
	// counts: RC units, VA stage-1 arbiter sets, SA stage-1 arbiters and
	// bypasses, and crossbar muxes and secondary paths. (Section VIII
	// explicitly counts crossbar faults instead of SA stage-2 faults and
	// needs no circuitry — hence no countable site — for VA stage 2.)
	UniversePaper
)

// SitesIn returns the fault sites of cfg restricted to universe u.
func SitesIn(cfg router.Config, u Universe) []Site {
	all := Sites(cfg)
	if u == UniverseAll {
		return all
	}
	var out []Site
	for _, s := range all {
		if s.Kind == VA2Arb || s.Kind == SA2Arb {
			continue
		}
		out = append(out, s)
	}
	return out
}

// FaultsToFailure runs a Monte-Carlo campaign: in each trial a fresh
// router accumulates uniformly ordered random faults until Functional()
// first reports failure; the number of faults injected (inclusive) is the
// trial's outcome. This is the experimental methodology BulletProof and
// Vicis used for their Table III numbers, applied to our router.
func FaultsToFailure(cfg router.Config, trials int, seed uint64, u Universe) CampaignResult {
	return FaultsToFailureObserved(cfg, trials, seed, u, nil)
}

// FaultsToFailureObserved is FaultsToFailure with a per-trial progress
// callback (nil to disable): onTrial(done, total) is invoked after each
// trial, so long campaigns can feed a live telemetry gauge. The callback
// does not influence the result — both entry points are deterministic in
// (cfg, trials, seed, u).
func FaultsToFailureObserved(cfg router.Config, trials int, seed uint64, u Universe, onTrial func(done, total int)) CampaignResult {
	mesh := topology.NewMesh(3, 3)
	sites := SitesIn(cfg, u)
	r := rng.New(seed)
	res := CampaignResult{Trials: trials, Min: math.MaxInt}
	counts := make([]int, 0, trials)
	var sum, sumSq float64
	for trial := 0; trial < trials; trial++ {
		rt := core.MustNew(4, mesh, cfg)
		order := r.Perm(len(sites))
		count := 0
		for _, idx := range order {
			Apply(rt, sites[idx], true)
			count++
			if !rt.Functional() {
				break
			}
		}
		sum += float64(count)
		sumSq += float64(count) * float64(count)
		counts = append(counts, count)
		if count < res.Min {
			res.Min = count
		}
		if count > res.Max {
			res.Max = count
		}
		if onTrial != nil {
			onTrial(trial+1, trials)
		}
	}
	res.Mean = sum / float64(trials)
	varr := sumSq/float64(trials) - res.Mean*res.Mean
	if varr > 0 {
		res.StdDev = math.Sqrt(varr)
	}
	res.P50 = stats.IntPercentile(counts, 50)
	res.P95 = stats.IntPercentile(counts, 95)
	res.P99 = stats.IntPercentile(counts, 99)
	return res
}

// TheoreticalBounds returns the paper's analytical (min, max) number of
// faults to cause failure for the protected router: min over stages of
// the stage's minimum, and one plus the sum of tolerated faults. For the
// 5-port, 4-VC router: (2, 28).
func TheoreticalBounds(ports, vcs int) (min, max int) {
	min = 2
	if vcs < 2 {
		min = 1
	}
	tolerated := ports + (vcs-1)*ports + ports + 2
	return min, tolerated + 1
}
