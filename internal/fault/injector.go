package fault

import (
	"gonoc/internal/noc"
	"gonoc/internal/obs"
	"gonoc/internal/rng"
	"gonoc/internal/sim"
)

// Injection records one fault injected into a live network.
type Injection struct {
	// Cycle is when the fault appeared.
	Cycle sim.Cycle
	// Router is the node id of the affected router.
	Router int
	// Site is the component hit.
	Site Site
}

// Injector injects permanent faults into a running network on a uniform
// random schedule, reproducing (at simulation-feasible scale) the paper's
// Section IX methodology: "we inject faults based on a uniform random
// variable with a mean of 10 million cycles. A fault is injected into a
// pipeline stage after 10 million cycles of its operation." Each
// (router, pipeline stage) pair carries its own schedule; when a
// schedule fires, a random still-healthy site in that stage is made
// faulty.
//
// With SafeOnly set, injections that would make a router non-functional
// are skipped (the paper's latency study measures a degraded but live
// network — packets are still delivered under multiple faults).
type Injector struct {
	net  *noc.Network
	mean sim.Cycle
	r    *rng.Stream

	// SafeOnly skips injections that would break a router.
	SafeOnly bool

	// obs receives injection events (nil when observability is off).
	obs *obs.Observer

	// next[router][stage] is the next scheduled injection cycle.
	next [][]sim.Cycle
	// sitesByStage[stage] lists site templates per stage.
	sitesByStage [4][]Site
	injected     []Injection
	faulty       map[int]map[Site]bool
}

// NewInjector attaches an injector to net with the given mean
// inter-injection interval per (router, stage). It registers itself as a
// network hook; faults then appear as the simulation runs.
func NewInjector(net *noc.Network, mean sim.Cycle, seed uint64, safeOnly bool) *Injector {
	inj := &Injector{
		net:      net,
		mean:     mean,
		r:        rng.New(seed),
		SafeOnly: safeOnly,
		obs:      net.Obs(),
		faulty:   map[int]map[Site]bool{},
	}
	cfg := net.Router(0).Config()
	for _, s := range Sites(cfg) {
		st := s.Kind.Stage()
		inj.sitesByStage[st] = append(inj.sitesByStage[st], s)
	}
	nodes := net.Topo().Nodes()
	inj.next = make([][]sim.Cycle, nodes)
	for n := range inj.next {
		inj.next[n] = make([]sim.Cycle, 4)
		for st := range inj.next[n] {
			inj.next[n][st] = inj.interval()
		}
	}
	net.AddHook(inj.hook)
	return inj
}

// interval draws a uniform inter-arrival time with the configured mean.
func (inj *Injector) interval() sim.Cycle {
	if inj.mean == 0 {
		return 1 << 62 // effectively never
	}
	return sim.Cycle(inj.r.Uint64n(uint64(2*inj.mean)) + 1)
}

// hook runs once per cycle.
func (inj *Injector) hook(c sim.Cycle) {
	for node := range inj.next {
		for st := range inj.next[node] {
			if c < inj.next[node][st] {
				continue
			}
			inj.next[node][st] = c + inj.interval()
			inj.inject(node, st, c)
		}
	}
}

// inject picks a random healthy site of stage st in router node.
func (inj *Injector) inject(node, st int, c sim.Cycle) {
	cands := inj.sitesByStage[st]
	if len(cands) == 0 {
		return
	}
	rt := inj.net.Router(node)
	done := inj.faulty[node]
	if done == nil {
		done = map[Site]bool{}
		inj.faulty[node] = done
	}
	// Random starting point, scan for a healthy site. Sites that are
	// already faulty — injected by us, by another injector, or set
	// manually — are skipped, so the safe-only rollback below can never
	// "repair" somebody else's fault.
	start := inj.r.Intn(len(cands))
	for i := 0; i < len(cands); i++ {
		s := cands[(start+i)%len(cands)]
		if done[s] || IsFaulty(rt, s) {
			continue
		}
		Apply(rt, s, true)
		if inj.SafeOnly && !rt.Functional() {
			Apply(rt, s, false)
			continue
		}
		done[s] = true
		inj.injected = append(inj.injected, Injection{Cycle: c, Router: node, Site: s})
		inj.obs.RecordFault(obs.KFaultsInjected, obs.EvFaultInject,
			c, node, int(s.Port), s.Index, int32(s.Kind.Stage()), s.String())
		return
	}
}

// Injected returns the log of injected faults in order of appearance.
func (inj *Injector) Injected() []Injection {
	out := make([]Injection, len(inj.injected))
	copy(out, inj.injected)
	return out
}
