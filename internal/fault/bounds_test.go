package fault

import (
	"testing"

	"gonoc/internal/core"
	"gonoc/internal/topology"
)

// maxTolerableSet builds the Section VIII-E worst-case-tolerable fault
// set for the 5-port, 4-VC router: 5 primary RC units, 3 VA1 arbiter
// sets per port (15), 5 SA1 arbiters, and the two simultaneously
// tolerable crossbar muxes (M2 and M4 in the paper's 1-based numbering;
// 1 and 3 zero-based) — 27 faults in total.
func maxTolerableSet() []Site {
	var set []Site
	for p := 0; p < 5; p++ {
		port := topology.Port(p)
		set = append(set, Site{Kind: RCPrimary, Port: port})
		for v := 0; v < 3; v++ {
			set = append(set, Site{Kind: VA1ArbSet, Port: port, Index: v})
		}
		set = append(set, Site{Kind: SA1Arb, Port: port})
	}
	set = append(set,
		Site{Kind: XBMux, Port: topology.Port(1)},
		Site{Kind: XBMux, Port: topology.Port(3)},
	)
	return set
}

func TestMaxToleratedSetIsFunctional(t *testing.T) {
	// The paper's maximum: 27 simultaneous faults, every mechanism
	// engaged, router still functional.
	set := maxTolerableSet()
	if len(set) != 27 {
		t.Fatalf("set has %d faults, want 27", len(set))
	}
	r := core.MustNew(4, topology.NewMesh(3, 3), protCfg())
	for _, s := range set {
		Apply(r, s, true)
	}
	if !r.Functional() {
		t.Fatal("router failed under the 27-fault maximum-tolerable set")
	}
}

func TestTwentyEighthFaultKills(t *testing.T) {
	// On top of the maximum-tolerable set, the paper says "an additional
	// fault in any of the pipeline stages or correction circuitry would
	// result in failure". For each stage's natural next fault, verify it.
	killers := []Site{
		{Kind: RCDuplicate, Port: topology.North},        // RC: second copy of a dead-primary port
		{Kind: VA1ArbSet, Port: topology.East, Index: 3}, // VA: the port's last arbiter set
		{Kind: SA1Bypass, Port: topology.South},          // SA: bypass of a dead-arbiter port
		{Kind: XBMux, Port: topology.Port(0)},            // XB: a third mux
		{Kind: XBSecondary, Port: topology.Port(1)},      // XB: secondary of a detoured output
	}
	for _, k := range killers {
		r := core.MustNew(4, topology.NewMesh(3, 3), protCfg())
		for _, s := range maxTolerableSet() {
			Apply(r, s, true)
		}
		Apply(r, k, true)
		if r.Functional() {
			t.Errorf("router survived 28th fault %v", k)
		}
	}
}

// TestCampaignNeverExceedsTheory runs many random orderings over the
// paper universe and confirms no trial ever survives past the analytical
// maximum of 27 tolerated faults.
func TestCampaignNeverExceedsTheory(t *testing.T) {
	res := FaultsToFailure(protCfg(), 2000, 77, UniversePaper)
	_, maxFail := TheoreticalBounds(5, 4)
	if res.Max > maxFail {
		t.Fatalf("a trial needed %d faults to fail; theory caps at %d", res.Max, maxFail)
	}
	if res.Min < 2 {
		t.Fatalf("a trial failed after %d fault(s); minimum is 2", res.Min)
	}
}
