package fault

import (
	"gonoc/internal/core"
	"gonoc/internal/noc"
	"gonoc/internal/obs"
	"gonoc/internal/rng"
	"gonoc/internal/sim"
)

// IsFaulty reports whether site s of router r is currently faulty. It is
// the read counterpart of Apply.
func IsFaulty(r *core.Router, s Site) bool {
	switch s.Kind {
	case RCPrimary:
		return r.RCFault(s.Port, 0)
	case RCDuplicate:
		return r.RCFault(s.Port, 1)
	case VA1ArbSet:
		return r.VA1Fault(s.Port, s.Index)
	case VA2Arb:
		return r.VA2Fault(s.Port, s.Index)
	case SA1Arb:
		return r.SA1Fault(s.Port)
	case SA1Bypass:
		return r.SA1BypassFault(s.Port)
	case SA2Arb:
		return r.SA2Fault(s.Port)
	case XBMux:
		return r.XBFault(s.Port)
	case XBSecondary:
		return r.XBSecondaryFault(s.Port)
	}
	return false
}

// TransientInjector injects transient faults: a randomly chosen component
// becomes unusable for a short window (Duration cycles) and then recovers
// — the paper's second fault category (Section I: cosmic rays, alpha
// particles, process variation), which typically upsets a circuit "in
// the order of one clock cycle".
//
// The protected router masks transients the same way it masks permanent
// faults: work is routed around the component while it is unusable. The
// injector never touches a site that is already faulty (e.g. one held by
// a permanent Injector on the same network), so the two can be combined.
type TransientInjector struct {
	net *noc.Network
	r   *rng.Stream
	obs *obs.Observer

	// Rate is the probability per cycle per router of a transient strike.
	Rate float64
	// Duration is how long a struck component stays unusable.
	Duration sim.Cycle

	sites  []Site
	active []transient
	// Strikes counts injected transients; Masked counts those that
	// expired without breaking the router.
	Strikes uint64
}

type transient struct {
	router  int
	site    Site
	expires sim.Cycle
}

// NewTransientInjector attaches a transient injector to net. rate is the
// per-router per-cycle strike probability; duration the outage length.
func NewTransientInjector(net *noc.Network, rate float64, duration sim.Cycle, seed uint64) *TransientInjector {
	ti := &TransientInjector{
		net:      net,
		r:        rng.New(seed),
		obs:      net.Obs(),
		Rate:     rate,
		Duration: duration,
		sites:    Sites(net.Router(0).Config()),
	}
	net.AddHook(ti.hook)
	return ti
}

// hook expires old transients and injects new ones.
func (ti *TransientInjector) hook(c sim.Cycle) {
	// Expire.
	kept := ti.active[:0]
	for _, t := range ti.active {
		if c >= t.expires {
			Apply(ti.net.Router(t.router), t.site, false)
			ti.obs.RecordFault(obs.KFaultsRecovered, obs.EvFaultRecover,
				c, t.router, int(t.site.Port), t.site.Index, 0, t.site.String())
			continue
		}
		kept = append(kept, t)
	}
	ti.active = kept

	// Strike.
	for node := 0; node < ti.net.Topo().Nodes(); node++ {
		if !ti.r.Bernoulli(ti.Rate) {
			continue
		}
		rt := ti.net.Router(node)
		s := ti.sites[ti.r.Intn(len(ti.sites))]
		if IsFaulty(rt, s) {
			continue // already faulty (possibly permanently); leave it alone
		}
		Apply(rt, s, true)
		ti.active = append(ti.active, transient{router: node, site: s, expires: c + ti.Duration})
		ti.Strikes++
		ti.obs.RecordFault(obs.KFaultsTransient, obs.EvFaultTransient,
			c, node, int(s.Port), s.Index, int32(ti.Duration), s.String())
	}
}

// Active returns the number of currently outstanding transient outages.
func (ti *TransientInjector) Active() int { return len(ti.active) }
