package fault

import (
	"testing"

	"gonoc/internal/topology"
)

func TestParseInjection(t *testing.T) {
	cases := []struct {
		spec   string
		router int
		site   Site
	}{
		{"5:sa1:e", 5, Site{Kind: SA1Arb, Port: topology.East}},
		{"0:rc:l", 0, Site{Kind: RCPrimary, Port: topology.Local}},
		{"12:rcdup:W", 12, Site{Kind: RCDuplicate, Port: topology.West}},
		{"3:va1:n:2", 3, Site{Kind: VA1ArbSet, Port: topology.North, Index: 2}},
		{"3:va2:s:0", 3, Site{Kind: VA2Arb, Port: topology.South, Index: 0}},
		{"7:sa1byp:1", 7, Site{Kind: SA1Bypass, Port: topology.North}},
		{"7:sa2:w", 7, Site{Kind: SA2Arb, Port: topology.West}},
		{"1:xb:e", 1, Site{Kind: XBMux, Port: topology.East}},
		{"1:xbsec:4", 1, Site{Kind: XBSecondary, Port: topology.West}},
	}
	for _, c := range cases {
		r, s, err := ParseInjection(c.spec)
		if err != nil {
			t.Errorf("ParseInjection(%q): %v", c.spec, err)
			continue
		}
		if r != c.router || s != c.site {
			t.Errorf("ParseInjection(%q) = %d, %+v; want %d, %+v", c.spec, r, s, c.router, c.site)
		}
	}
}

func TestParseInjectionErrors(t *testing.T) {
	bad := []string{
		"",            // empty
		"5:sa1",       // missing port
		"5:sa1:e:1",   // index on indexless kind
		"5:va1:e",     // missing required index
		"x:sa1:e",     // bad router
		"-1:sa1:e",    // negative router
		"5:nope:e",    // unknown kind
		"5:sa1:q",     // bad port letter
		"5:sa1:-2",    // negative port
		"5:va1:e:x",   // bad index
		"5:va1:e:-1",  // negative index
		"5:sa1:e:1:2", // too many fields
	}
	for _, spec := range bad {
		if _, _, err := ParseInjection(spec); err == nil {
			t.Errorf("ParseInjection(%q) succeeded, want error", spec)
		}
	}
}

func TestParseInjections(t *testing.T) {
	routers, sites, err := ParseInjections("5:sa1:e, 0:va1:n:1")
	if err != nil {
		t.Fatal(err)
	}
	if len(routers) != 2 || routers[0] != 5 || routers[1] != 0 {
		t.Errorf("routers = %v", routers)
	}
	if sites[0].Kind != SA1Arb || sites[1].Kind != VA1ArbSet || sites[1].Index != 1 {
		t.Errorf("sites = %+v", sites)
	}

	if r, s, err := ParseInjections(""); err != nil || r != nil || s != nil {
		t.Errorf("empty list: %v %v %v, want all nil", r, s, err)
	}
	if _, _, err := ParseInjections("5:sa1:e,bogus"); err == nil {
		t.Error("bogus tail accepted")
	}
}

// TestParseNetworkInjections covers the network-level kinds: link faults
// need a mesh-direction port, router faults take no port at all, and
// both round-trip through FormatInjection.
func TestParseNetworkInjections(t *testing.T) {
	good := []struct {
		spec   string
		router int
		site   Site
	}{
		{"5:link:n", 5, Site{Kind: LinkDead, Port: topology.North}},
		{"5:link:e", 5, Site{Kind: LinkDead, Port: topology.East}},
		{"12:LINK:3", 12, Site{Kind: LinkDead, Port: topology.South}},
		{"0:link:w", 0, Site{Kind: LinkDead, Port: topology.West}},
		{"10:router", 10, Site{Kind: RouterDead}},
		{"0:ROUTER", 0, Site{Kind: RouterDead}},
	}
	for _, c := range good {
		r, s, err := ParseInjection(c.spec)
		if err != nil {
			t.Errorf("ParseInjection(%q): %v", c.spec, err)
			continue
		}
		if r != c.router || s != c.site {
			t.Errorf("ParseInjection(%q) = %d, %+v; want %d, %+v", c.spec, r, s, c.router, c.site)
		}
		if !s.Kind.Network() {
			t.Errorf("%q: Kind.Network() = false", c.spec)
		}
		out, err := FormatInjection(r, s)
		if err != nil {
			t.Errorf("FormatInjection(%q): %v", c.spec, err)
			continue
		}
		r2, s2, err := ParseInjection(out)
		if err != nil || r2 != r || s2 != s {
			t.Errorf("round trip %q -> %q -> %d, %+v (%v)", c.spec, out, r2, s2, err)
		}
	}
	bad := []string{
		"5:link",      // link needs a port
		"5:link:l",    // local is not a mesh link
		"5:link:0",    // numeric local port
		"5:link:e:1",  // link takes no VC index
		"5:router:n",  // router takes no port
		"5:router:0",  // router takes no numeric port either
		"5:router:e:1",
	}
	for _, spec := range bad {
		if _, _, err := ParseInjection(spec); err == nil {
			t.Errorf("ParseInjection(%q) succeeded, want error", spec)
		}
	}
}
