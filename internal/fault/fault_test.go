package fault

import (
	"testing"

	"gonoc/internal/core"
	"gonoc/internal/noc"
	"gonoc/internal/router"
	"gonoc/internal/topology"
	"gonoc/internal/traffic"
)

func protCfg() router.Config {
	cfg := router.DefaultConfig()
	cfg.FaultTolerant = true
	cfg.Classes = 1
	return cfg
}

func TestSiteEnumeration(t *testing.T) {
	prot := Sites(protCfg())
	// Per port: RC×2 + VA1×4 + VA2×4 + SA1 + bypass + SA2 + XB + XBsec = 15.
	if len(prot) != 75 {
		t.Fatalf("protected sites = %d, want 75", len(prot))
	}
	base := protCfg()
	base.FaultTolerant = false
	if n := len(Sites(base)); n != 60 {
		t.Fatalf("baseline sites = %d, want 60", n)
	}
	// No duplicates.
	seen := map[Site]bool{}
	for _, s := range prot {
		if seen[s] {
			t.Fatalf("duplicate site %v", s)
		}
		seen[s] = true
	}
}

func TestKindStageAndCorrection(t *testing.T) {
	cases := map[Kind]core.StageID{
		RCPrimary: core.StageRC, RCDuplicate: core.StageRC,
		VA1ArbSet: core.StageVA, VA2Arb: core.StageVA,
		SA1Arb: core.StageSA, SA1Bypass: core.StageSA,
		SA2Arb: core.StageXB, XBMux: core.StageXB, XBSecondary: core.StageXB,
	}
	for k, st := range cases {
		if k.Stage() != st {
			t.Errorf("%v.Stage() = %v, want %v", k, k.Stage(), st)
		}
	}
	for _, k := range []Kind{RCDuplicate, SA1Bypass, XBSecondary} {
		if !k.Correction() {
			t.Errorf("%v should be correction circuitry", k)
		}
	}
	for _, k := range []Kind{RCPrimary, VA1ArbSet, VA2Arb, SA1Arb, SA2Arb, XBMux} {
		if k.Correction() {
			t.Errorf("%v should not be correction circuitry", k)
		}
	}
}

func TestApplyAndRepairEverySite(t *testing.T) {
	mesh := topology.NewMesh(3, 3)
	r := core.MustNew(4, mesh, protCfg())
	for _, s := range Sites(protCfg()) {
		Apply(r, s, true)
		Apply(r, s, false)
	}
	if !r.Functional() {
		t.Fatal("router not functional after repairing every site")
	}
}

func TestSingleFaultAlwaysTolerated(t *testing.T) {
	// The protected router tolerates any single fault (Section V).
	mesh := topology.NewMesh(3, 3)
	for _, s := range Sites(protCfg()) {
		r := core.MustNew(4, mesh, protCfg())
		Apply(r, s, true)
		if !r.Functional() {
			t.Errorf("single fault at %v killed the protected router", s)
		}
	}
}

func TestBaselineSingleFaultAlwaysFatal(t *testing.T) {
	cfg := protCfg()
	cfg.FaultTolerant = false
	mesh := topology.NewMesh(3, 3)
	for _, s := range Sites(cfg) {
		r := core.MustNew(4, mesh, cfg)
		Apply(r, s, true)
		if r.Functional() {
			t.Errorf("baseline survived fault at %v", s)
		}
	}
}

func TestTheoreticalBounds(t *testing.T) {
	min, max := TheoreticalBounds(5, 4)
	if min != 2 || max != 28 {
		t.Fatalf("bounds (%d, %d), want (2, 28)", min, max)
	}
	min2, max2 := TheoreticalBounds(5, 2)
	if min2 != 2 || max2 != 18 {
		t.Fatalf("2-VC bounds (%d, %d), want (2, 18)", min2, max2)
	}
}

func TestFaultsToFailureCampaign(t *testing.T) {
	res := FaultsToFailure(protCfg(), 300, 42, UniversePaper)
	if res.Trials != 300 {
		t.Fatalf("trials = %d", res.Trials)
	}
	// Every trial must fall within the theoretical bounds.
	if res.Min < 2 || res.Max > 28 {
		t.Fatalf("observed bounds (%d, %d) outside theory (2, 28)", res.Min, res.Max)
	}
	// Uniformly ordered faults typically kill the router well before the
	// theoretical max; the mean must sit strictly inside the bounds.
	if res.Mean <= 2 || res.Mean >= 28 {
		t.Fatalf("mean %v outside (2, 28)", res.Mean)
	}
	if res.StdDev <= 0 {
		t.Fatalf("zero variance across %d trials", res.Trials)
	}
}

func TestCampaignBaselineAlwaysOne(t *testing.T) {
	cfg := protCfg()
	cfg.FaultTolerant = false
	res := FaultsToFailure(cfg, 100, 7, UniverseAll)
	if res.Min != 1 || res.Max != 1 || res.Mean != 1 {
		t.Fatalf("baseline campaign = %+v, want all 1", res)
	}
}

func TestCampaignFullUniverseToleratesMore(t *testing.T) {
	// The full site universe includes VA2/SA2 arbiters, which the router
	// tolerates beyond the paper's conservative 28-fault ceiling.
	full := FaultsToFailure(protCfg(), 300, 42, UniverseAll)
	paper := FaultsToFailure(protCfg(), 300, 42, UniversePaper)
	if full.Mean <= paper.Mean {
		t.Fatalf("full-universe mean %v not above paper-universe mean %v", full.Mean, paper.Mean)
	}
	if full.Min < 2 {
		t.Fatalf("full-universe min %d below 2", full.Min)
	}
}

func TestSitesInUniverse(t *testing.T) {
	all := SitesIn(protCfg(), UniverseAll)
	paper := SitesIn(protCfg(), UniversePaper)
	// 75 total minus 20 VA2 arbiters and 5 SA2 arbiters.
	if len(all) != 75 || len(paper) != 50 {
		t.Fatalf("universe sizes all=%d paper=%d, want 75/50", len(all), len(paper))
	}
	for _, s := range paper {
		if s.Kind == VA2Arb || s.Kind == SA2Arb {
			t.Fatalf("paper universe contains %v", s)
		}
	}
}

func TestCampaignDeterminism(t *testing.T) {
	a := FaultsToFailure(protCfg(), 100, 5, UniverseAll)
	b := FaultsToFailure(protCfg(), 100, 5, UniverseAll)
	if a != b {
		t.Fatalf("campaign not deterministic: %+v vs %+v", a, b)
	}
}

func TestInjectorSafeOnly(t *testing.T) {
	cfg := noc.Config{Width: 4, Height: 4, Router: protCfg(), Warmup: 0}
	src := traffic.NewSynthetic(16, 0.02, traffic.Uniform(16), traffic.FixedSize(1), 3)
	n := noc.MustNew(cfg, src)
	inj := NewInjector(n, 200, 11, true)
	n.Run(8000)
	if len(inj.Injected()) == 0 {
		t.Fatal("no faults injected")
	}
	if !n.Functional() {
		t.Fatal("SafeOnly injector broke a router")
	}
	// Traffic still flows.
	if n.Stats().Ejected() == 0 {
		t.Fatal("no packets delivered under injection")
	}
	// Injections spread across stages.
	stages := map[core.StageID]int{}
	for _, e := range inj.Injected() {
		stages[e.Site.Kind.Stage()]++
	}
	if len(stages) < 3 {
		t.Errorf("injections concentrated: %v", stages)
	}
}

func TestInjectorUnsafeCanBreakRouters(t *testing.T) {
	cfg := noc.Config{Width: 4, Height: 4, Router: protCfg(), Warmup: 0}
	n := noc.MustNew(cfg, nil)
	NewInjector(n, 50, 11, false)
	n.Run(20000)
	if n.Functional() {
		t.Fatal("unsafe high-rate injection never broke any router")
	}
}

func TestInjectorZeroMeanNeverFires(t *testing.T) {
	cfg := noc.Config{Width: 2, Height: 2, Router: protCfg(), Warmup: 0}
	n := noc.MustNew(cfg, nil)
	inj := NewInjector(n, 0, 1, true)
	n.Run(1000)
	if len(inj.Injected()) != 0 {
		t.Fatal("injector with zero mean fired")
	}
}

func TestInjectorNeverRepairsForeignFaults(t *testing.T) {
	// Regression: a safe-only injector used to roll back its injection by
	// repairing the site even when the fault pre-existed (set manually or
	// by another injector), silently healing the router.
	cfg := noc.Config{Width: 2, Height: 2, Router: protCfg(), Warmup: 0}
	n := noc.MustNew(cfg, nil)
	victim := n.Router(0)
	victim.SetRCFault(topology.West, 0, true)
	victim.SetRCFault(topology.West, 1, true) // manually dead port
	if victim.Functional() {
		t.Fatal("setup: router should be non-functional")
	}
	NewInjector(n, 3, 5, true) // aggressive safe-only injector
	n.Run(2000)
	if victim.Functional() {
		t.Fatal("injector repaired a manually injected fault")
	}
	if !victim.RCFault(topology.West, 0) || !victim.RCFault(topology.West, 1) {
		t.Fatal("manual RC faults were cleared")
	}
}
