package fault

import (
	"fmt"
	"strconv"
	"strings"

	"gonoc/internal/topology"
)

// Injection spec grammar accepted by ParseInjection, used by noctool's
// -inject flags:
//
//	<router>:<kind>:<port>[:<index>]
//	<router>:link:<port>
//	<router>:router
//
// router is a node id; kind is one of the mnemonics below; port is a
// compass letter (l, n, e, s, w) or a numeric port id; index is the VC
// index, required for the per-VC kinds (va1, va2) and rejected
// otherwise.
//
//	rc      RCPrimary       rcdup   RCDuplicate
//	va1     VA1ArbSet       va2     VA2Arb
//	sa1     SA1Arb          sa1byp  SA1Bypass
//	sa2     SA2Arb
//	xb      XBMux           xbsec   XBSecondary
//	link    LinkDead        router  RouterDead
//
// The network-level kinds name a dead inter-router link ("3:link:n" —
// the link leaving router 3 northward, severed in both directions; the
// port must be a compass direction, never l) and a completely dead
// router ("5:router" — the only two-field form). They are applied with
// ApplyNetwork rather than Apply.
//
// Examples: "5:sa1:e" (SA1 arbiter, router 5, East input),
// "0:va1:n:2" (VA1 arbiter set of North VC 2, router 0).
var kindNames = map[string]Kind{
	"rc":     RCPrimary,
	"rcdup":  RCDuplicate,
	"va1":    VA1ArbSet,
	"va2":    VA2Arb,
	"sa1":    SA1Arb,
	"sa1byp": SA1Bypass,
	"sa2":    SA2Arb,
	"xb":     XBMux,
	"xbsec":  XBSecondary,
	"link":   LinkDead,
	"router": RouterDead,
}

var portNames = map[string]topology.Port{
	"l": topology.Local,
	"n": topology.North,
	"e": topology.East,
	"s": topology.South,
	"w": topology.West,
}

// perVC reports whether kind k requires a VC index.
func perVC(k Kind) bool { return k == VA1ArbSet || k == VA2Arb }

// ParseInjection parses one injection spec (see the grammar above) and
// returns the target router id and fault site.
func ParseInjection(spec string) (router int, site Site, err error) {
	fields := strings.Split(spec, ":")
	if len(fields) < 2 || len(fields) > 4 {
		return 0, Site{}, fmt.Errorf("fault spec %q: want <router>:<kind>:<port>[:<index>]", spec)
	}
	router, err = strconv.Atoi(fields[0])
	if err != nil || router < 0 {
		return 0, Site{}, fmt.Errorf("fault spec %q: bad router id %q", spec, fields[0])
	}
	kind, ok := kindNames[strings.ToLower(fields[1])]
	if !ok {
		return 0, Site{}, fmt.Errorf("fault spec %q: unknown kind %q (want rc, rcdup, va1, va2, sa1, sa1byp, sa2, xb, xbsec, link or router)", spec, fields[1])
	}
	site.Kind = kind
	if kind == RouterDead {
		if len(fields) != 2 {
			return 0, Site{}, fmt.Errorf("fault spec %q: kind %q takes no port or index", spec, fields[1])
		}
		return router, site, nil
	}
	if len(fields) < 3 {
		return 0, Site{}, fmt.Errorf("fault spec %q: kind %q needs a port", spec, fields[1])
	}
	if p, ok := portNames[strings.ToLower(fields[2])]; ok {
		site.Port = p
	} else {
		n, err := strconv.Atoi(fields[2])
		if err != nil || n < 0 {
			return 0, Site{}, fmt.Errorf("fault spec %q: bad port %q (want l, n, e, s, w or a port id)", spec, fields[2])
		}
		site.Port = topology.Port(n)
	}
	if kind == LinkDead && (site.Port < topology.North || site.Port > topology.West) {
		return 0, Site{}, fmt.Errorf("fault spec %q: link port must be a mesh direction (n, e, s or w)", spec)
	}
	switch {
	case perVC(kind) && len(fields) != 4:
		return 0, Site{}, fmt.Errorf("fault spec %q: kind %q needs a VC index", spec, fields[1])
	case !perVC(kind) && len(fields) == 4:
		return 0, Site{}, fmt.Errorf("fault spec %q: kind %q takes no VC index", spec, fields[1])
	case len(fields) == 4:
		idx, err := strconv.Atoi(fields[3])
		if err != nil || idx < 0 {
			return 0, Site{}, fmt.Errorf("fault spec %q: bad VC index %q", spec, fields[3])
		}
		site.Index = idx
	}
	return router, site, nil
}

// FormatInjection renders a router id and fault site as an injection
// spec that ParseInjection accepts, the inverse of ParseInjection:
// FormatInjection(ParseInjection(s)) parses back to the same router and
// site. Ports 0-4 render as their compass letters, larger port ids as
// numbers; the VC index is appended exactly for the per-VC kinds.
func FormatInjection(router int, site Site) (string, error) {
	if router < 0 {
		return "", fmt.Errorf("fault: format: bad router id %d", router)
	}
	var kind string
	for name, k := range kindNames {
		if k == site.Kind {
			kind = name
			break
		}
	}
	if kind == "" {
		return "", fmt.Errorf("fault: format: unknown kind %v", site.Kind)
	}
	if site.Kind == RouterDead {
		if site.Port != 0 || site.Index != 0 {
			return "", fmt.Errorf("fault: format: kind %q takes no port or index", kind)
		}
		return fmt.Sprintf("%d:%s", router, kind), nil
	}
	if site.Kind == LinkDead && (site.Port < topology.North || site.Port > topology.West) {
		return "", fmt.Errorf("fault: format: link port must be a mesh direction, got %d", int(site.Port))
	}
	if site.Port < 0 {
		return "", fmt.Errorf("fault: format: bad port %d", int(site.Port))
	}
	port := strconv.Itoa(int(site.Port))
	for name, p := range portNames {
		if p == site.Port {
			port = name
			break
		}
	}
	if perVC(site.Kind) {
		if site.Index < 0 {
			return "", fmt.Errorf("fault: format: bad VC index %d", site.Index)
		}
		return fmt.Sprintf("%d:%s:%s:%d", router, kind, port, site.Index), nil
	}
	if site.Index != 0 {
		return "", fmt.Errorf("fault: format: kind %q takes no VC index, got %d", kind, site.Index)
	}
	return fmt.Sprintf("%d:%s:%s", router, kind, port), nil
}

// ParseInjections parses a comma-separated list of injection specs.
func ParseInjections(list string) (routers []int, sites []Site, err error) {
	if strings.TrimSpace(list) == "" {
		return nil, nil, nil
	}
	for _, spec := range strings.Split(list, ",") {
		r, s, err := ParseInjection(strings.TrimSpace(spec))
		if err != nil {
			return nil, nil, err
		}
		routers = append(routers, r)
		sites = append(sites, s)
	}
	return routers, sites, nil
}
