package fault

import "testing"

// FuzzParseInjection checks the round-trip property of the injection
// spec grammar: any spec ParseInjection accepts must re-render through
// FormatInjection into a spec that parses back to the identical router
// and site. Invalid specs only need to be rejected without panicking.
func FuzzParseInjection(f *testing.F) {
	for _, seed := range []string{
		"5:sa1:e",
		"0:va1:n:2",
		"12:xb:w",
		"3:rcdup:l",
		"7:va2:0:1",
		"9:sa2:7",
		"1:xbsec:s",
		"2:sa1byp:4",
		"8:RC:E", // mnemonics are case-insensitive
		"bogus",
		"1:2:3:4:5",
		"-1:rc:l",
		"5:rc:e:1",
		"::",
		"5:va1:e", // per-VC kind missing its index
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		router, site, err := ParseInjection(spec)
		if err != nil {
			return
		}
		out, err := FormatInjection(router, site)
		if err != nil {
			t.Fatalf("parsed %q to (%d, %+v) but cannot format it back: %v", spec, router, site, err)
		}
		router2, site2, err := ParseInjection(out)
		if err != nil {
			t.Fatalf("formatted %q -> %q which does not re-parse: %v", spec, out, err)
		}
		if router2 != router || site2 != site {
			t.Fatalf("round trip %q -> (%d, %+v) -> %q -> (%d, %+v)",
				spec, router, site, out, router2, site2)
		}
	})
}
